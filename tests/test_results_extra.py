"""Additional coverage for result tables and CSV/report output."""

import csv

import numpy as np
import pytest

from repro.harness import ResultTable, RunRecord


def _record(**overrides):
    base = dict(
        algorithm="a", dataset="d", noise_type="one-way", noise_level=0.01,
        repetition=0, assignment="jv", measures={"accuracy": 0.5},
        similarity_time=2.0, assignment_time=1.0, peak_memory_bytes=1024,
    )
    base.update(overrides)
    return RunRecord(**base)


class TestSeries:
    def test_series_respects_conditions(self):
        table = ResultTable([
            _record(noise_type="one-way", noise_level=0.0,
                    measures={"accuracy": 0.9}),
            _record(noise_type="multimodal", noise_level=0.0,
                    measures={"accuracy": 0.1}),
        ])
        series = table.series("a", "noise_level", "accuracy",
                              noise_type="one-way")
        assert series == [(0.0, 0.9)]

    def test_series_sorted_by_x(self):
        table = ResultTable([
            _record(noise_level=0.05, measures={"accuracy": 0.2}),
            _record(noise_level=0.0, measures={"accuracy": 1.0}),
            _record(noise_level=0.02, measures={"accuracy": 0.6}),
        ])
        xs = [x for x, _y in table.series("a", "noise_level", "accuracy")]
        assert xs == sorted(xs)

    def test_series_averages_repetitions(self):
        table = ResultTable([
            _record(repetition=0, measures={"accuracy": 0.4}),
            _record(repetition=1, measures={"accuracy": 0.6}),
        ])
        assert table.series("a", "noise_level", "accuracy") == [(0.01, 0.5)]


class TestCsv:
    def test_round_trip_values(self, tmp_path):
        path = tmp_path / "r.csv"
        ResultTable([
            _record(measures={"accuracy": 0.5, "s3": 0.25}),
            _record(algorithm="b", failed=True, measures={}),
        ]).to_csv(path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["algorithm"] == "a"
        assert float(rows[0]["accuracy"]) == 0.5
        assert rows[1]["failed"] == "True"
        assert rows[1]["accuracy"] == ""

    def test_memory_column(self, tmp_path):
        path = tmp_path / "r.csv"
        ResultTable([_record()]).to_csv(path)
        with open(path) as handle:
            row = next(csv.DictReader(handle))
        assert int(row["peak_memory_bytes"]) == 1024


class TestGridFormatting:
    def test_custom_format_string(self):
        table = ResultTable([_record(measures={"accuracy": 0.123456})])
        text = table.format_grid("algorithm", "noise_level", "accuracy",
                                 fmt="{:.1f}")
        assert "0.1" in text

    def test_timing_grid(self):
        table = ResultTable([_record()])
        text = table.format_grid("algorithm", "noise_level",
                                 "similarity_time", fmt="{:.2f}")
        assert "2.00" in text

    def test_rows_sorted_stably(self):
        table = ResultTable([
            _record(algorithm="zeta"),
            _record(algorithm="alpha"),
        ])
        text = table.format_grid("algorithm", "noise_level", "accuracy")
        assert text.index("alpha") < text.index("zeta")

    def test_extend_and_iter(self):
        table = ResultTable()
        table.extend([_record(), _record(repetition=1)])
        assert len(list(iter(table))) == 2
        assert len(table.records) == 2
