"""Property-based tests for the tracing core (hypothesis).

The tracer's invariants must hold under *arbitrary* nesting, exception
placement, and counter traffic — not just the shapes the algorithms
happen to produce today:

* every opened span closes (the open-span stack is empty after any
  program, even one that raises anywhere);
* a parent's peak memory is never below any child's;
* counter totals are never negative and sum exactly;
* a span an exception escaped through records ``status="error"`` while
  spans that closed before it stay ``"ok"``.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.observability import (
    add_counter,
    capture_trace,
    counter_totals,
    span,
    trace_structure,
    tracing,
)
from repro.observability.trace import _STATE


# One node of a random span program: a stage name, counter increments to
# apply inside it, child nodes, and whether to raise after the children.
_names = st.sampled_from(["a", "b", "c", "similarity", "assignment"])
_counters = st.lists(
    st.tuples(st.sampled_from(["x", "y", "sinkhorn_iterations"]),
              st.integers(min_value=0, max_value=1000)),
    max_size=3,
)


def _programs(depth):
    node = st.fixed_dictionaries({
        "stage": _names,
        "counters": _counters,
        "raises": st.booleans(),
        "children": st.just([]),
    })
    if depth > 0:
        node = st.fixed_dictionaries({
            "stage": _names,
            "counters": _counters,
            "raises": st.booleans(),
            "children": st.lists(_programs(depth - 1), max_size=3),
        })
    return node


class _Boom(Exception):
    pass


def _execute(node):
    """Run one program node inside a span; re-raise child exceptions."""
    with span(node["stage"]):
        for name, value in node["counters"]:
            add_counter(name, value)
        for child in node["children"]:
            _execute(child)
        if node["raises"]:
            raise _Boom(node["stage"])


def _run_program(roots):
    """Execute a forest, swallowing the (expected) injected exceptions."""
    with tracing(True), capture_trace() as trace:
        for root in roots:
            try:
                _execute(root)
            except _Boom:
                pass
    return trace.to_payload()


forest = st.lists(_programs(2), min_size=1, max_size=4)


@settings(max_examples=60, deadline=None)
@given(forest)
def test_every_span_closes(roots):
    _run_program(roots)
    assert _STATE.stack == []  # nothing left open, raises included
    assert _STATE.scopes == []


@settings(max_examples=60, deadline=None)
@given(forest)
def test_peak_memory_monotone_in_children(roots):
    payload = _run_program(roots)

    def check(entry):
        for child in entry["children"]:
            assert entry["peak_memory_bytes"] >= child["peak_memory_bytes"]
            check(child)

    for root in payload["spans"]:
        check(root)


@settings(max_examples=60, deadline=None)
@given(forest)
def test_counters_never_negative_and_sum_exactly(roots):
    payload = _run_program(roots)
    totals = counter_totals(payload)
    assert all(value >= 0 for value in totals.values())

    # A raising node discards nothing: its span still closes and keeps
    # its counters, but siblings *after* a raising child never run.
    def dict_merge(acc, other):
        for name, value in other.items():
            acc[name] = acc.get(name, 0) + value
        return acc

    def subtree_raises(node):
        if node["raises"]:
            return True
        return any(subtree_raises(child) for child in node["children"])

    def reachable(node):
        out = {}
        for name, value in node["counters"]:
            out[name] = out.get(name, 0) + value
        for child in node["children"]:
            out = dict_merge(out, reachable(child))
            if subtree_raises(child):
                break
        return out

    want = {}
    for root in roots:
        want = dict_merge(want, reachable(root))
    assert totals == want


@settings(max_examples=60, deadline=None)
@given(forest)
def test_exception_marks_exactly_the_escape_path(roots):
    payload = _run_program(roots)

    def check(entry, node):
        escaped = node["raises"] or any(
            subtree_raises_through(child) for child in node["children"]
        )
        assert entry["status"] == ("error" if escaped else "ok")
        for child_entry, child_node in zip(entry["children"],
                                           node["children"]):
            check(child_entry, child_node)

    def subtree_raises_through(node):
        return node["raises"] or any(subtree_raises_through(c)
                                     for c in node["children"])

    for entry, node in zip(payload["spans"], roots):
        check(entry, node)


@settings(max_examples=30, deadline=None)
@given(forest)
def test_structure_reflects_execution_not_timing(roots):
    """Two executions of the same program have identical structures."""
    assert (trace_structure(_run_program(roots))
            == trace_structure(_run_program(roots)))


@given(st.integers(min_value=-1000, max_value=-1))
def test_negative_counter_rejected(value):
    with tracing(True), capture_trace():
        with pytest.raises(ValueError):
            add_counter("x", value)
