"""Permutation-equivariance of similarity computations.

An unrestricted aligner may use nothing but structure, so relabeling the
input nodes must permute its similarity matrix accordingly:
``sim(P_a G_a, P_b G_b) = P_a sim(G_a, G_b) P_b^T``.  This holds exactly
for the deterministic algorithms; it is the formal statement of
"unrestricted" and catches any accidental dependence on node order.
"""

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.graphs import powerlaw_cluster_graph
from repro.graphs.operations import permute_graph
from repro.noise import make_pair

SOURCE = powerlaw_cluster_graph(40, 3, 0.3, seed=121)
TARGET = make_pair(SOURCE, "one-way", 0.05, seed=122).target

# Deterministic similarity stages with no randomized components.
_EXACT = ("isorank", "nsd", "graal", "lrea")


@pytest.mark.parametrize("name", _EXACT)
class TestExactEquivariance:
    def test_row_permutation(self, name):
        rng = np.random.default_rng(1)
        perm = rng.permutation(SOURCE.num_nodes)
        base = get_algorithm(name).similarity(SOURCE, TARGET, seed=0)
        permuted = get_algorithm(name).similarity(
            permute_graph(SOURCE, perm), TARGET, seed=0
        )
        if hasattr(base, "toarray"):
            base, permuted = base.toarray(), permuted.toarray()
        assert np.allclose(permuted[perm], base, atol=1e-8)

    def test_column_permutation(self, name):
        rng = np.random.default_rng(2)
        perm = rng.permutation(TARGET.num_nodes)
        base = get_algorithm(name).similarity(SOURCE, TARGET, seed=0)
        permuted = get_algorithm(name).similarity(
            SOURCE, permute_graph(TARGET, perm), seed=0
        )
        if hasattr(base, "toarray"):
            base, permuted = base.toarray(), permuted.toarray()
        assert np.allclose(permuted[:, perm], base, atol=1e-8)


class TestAlignmentQualityInvariance:
    """Relabeled inputs must yield the *same accuracy*, not just run."""

    @pytest.mark.parametrize("name", ["isorank", "nsd", "graal"])
    def test_accuracy_label_invariant(self, name):
        from repro.measures import accuracy
        pair = make_pair(SOURCE, "one-way", 0.02, seed=123)
        base = get_algorithm(name).align(pair.source, pair.target, seed=0)
        base_acc = accuracy(base.mapping, pair.ground_truth)

        rng = np.random.default_rng(3)
        perm = rng.permutation(pair.source.num_nodes)
        relabeled_source = permute_graph(pair.source, perm)
        # Truth for the relabeled source: node perm[i] of the new source is
        # old node i, so truth'[perm[i]] = truth[i].
        new_truth = np.empty_like(pair.ground_truth)
        new_truth[perm] = pair.ground_truth
        relabeled = get_algorithm(name).align(relabeled_source, pair.target,
                                              seed=0)
        relabeled_acc = accuracy(relabeled.mapping, new_truth)
        assert relabeled_acc == pytest.approx(base_acc, abs=0.1)
