"""Corruption matrix and layering contract of the disk-backed cache.

The acceptance bar: **no on-disk breakage ever escapes as an
exception or as wrong data**.  Truncated payloads, flipped bytes, a
deleted metadata file, an unreadable payload, unpicklable bytes — each
yields a quarantine + recompute with a recorded diagnostic event, and
the recomputed value is correct.
"""

import json
import os
import pickle

import numpy as np
import pytest

from repro.cache import ArtifactCache, artifact_cache, caching
from repro.cache_disk import (
    DiskArtifactCache,
    atomic_write_bytes,
    entry_key,
    load_cache_events,
)
from repro.faults import corrupt_random_cache_entry
from repro.graphs import powerlaw_cluster_graph

GRAPH = powerlaw_cluster_graph(30, 3, 0.3, seed=2)
OTHER = powerlaw_cluster_graph(30, 3, 0.3, seed=3)


def _value():
    return np.arange(24, dtype=np.float64).reshape(4, 6)


def _populate(disk, artifact="basis", params=None):
    """Store one entry; returns its (payload, meta) paths."""
    produced = []

    def producer():
        produced.append(True)
        return _value()

    value = disk.get_or_compute(GRAPH, artifact, producer, params=params)
    assert produced and np.array_equal(value, _value())
    key = entry_key(GRAPH.content_digest(), artifact, params)
    payload, meta = disk._paths(key)
    assert payload.exists() and meta.exists()
    return payload, meta


class TestRoundTrip:
    def test_cold_store_warm_load(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        _populate(disk)
        found, value = disk.load(GRAPH, "basis")
        assert found and np.array_equal(value, _value())
        assert disk.stats()["hits"] == 1

    def test_loaded_values_are_frozen(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        _populate(disk)
        _found, value = disk.load(GRAPH, "basis")
        with pytest.raises(ValueError):
            value[0, 0] = 99.0

    def test_params_and_graphs_address_distinct_entries(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        disk.get_or_compute(GRAPH, "basis", _value, params={"k": 4})
        assert disk.load(GRAPH, "basis", params={"k": 5}) == (False, None)
        assert disk.load(OTHER, "basis", params={"k": 4}) == (False, None)
        found, _ = disk.load(GRAPH, "basis", params={"k": 4})
        assert found

    def test_cross_instance_reuse(self, tmp_path):
        """A second DiskArtifactCache on the same dir — a different
        process, morally — sees the first one's entries."""
        DiskArtifactCache(tmp_path).get_or_compute(GRAPH, "basis", _value)
        found, value = DiskArtifactCache(tmp_path).load(GRAPH, "basis")
        assert found and np.array_equal(value, _value())


def _assert_recovered(disk, reason_fragment):
    """The shared back half of every corruption case: the next lookup is
    a quarantining miss, the recompute round-trips, and the event log
    names the reason."""
    recomputed = []
    value = disk.get_or_compute(GRAPH, "basis",
                                lambda: recomputed.append(True) or _value())
    assert recomputed, "corrupt entry was served instead of recomputed"
    assert np.array_equal(value, _value())
    assert disk.stats()["quarantined"] >= 1
    events = load_cache_events(disk.root)
    assert any(e["kind"] == "entry_quarantined"
               and reason_fragment in e["reason"] for e in events), events
    # ...and the healed entry now loads cleanly.
    found, healed = disk.load(GRAPH, "basis")
    assert found and np.array_equal(healed, _value())


class TestCorruptionMatrix:
    def test_truncated_payload(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        payload, _meta = _populate(disk)
        payload.write_bytes(payload.read_bytes()[: payload.stat().st_size // 2])
        _assert_recovered(disk, "checksum mismatch")

    def test_flipped_byte(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        _populate(disk)
        assert corrupt_random_cache_entry(tmp_path, seed=0) is not None
        _assert_recovered(disk, "checksum mismatch")

    def test_missing_metadata_orphans_payload(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        payload, meta = _populate(disk)
        meta.unlink()
        _assert_recovered(disk, "orphan payload")
        assert list(disk.quarantine_dir.iterdir())  # payload moved aside

    def test_malformed_metadata(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        _payload, meta = _populate(disk)
        meta.write_text("{not json")
        _assert_recovered(disk, "malformed")

    def test_metadata_without_payload(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        payload, _meta = _populate(disk)
        payload.unlink()
        _assert_recovered(disk, "metadata without payload")

    def test_newer_entry_version_refused_not_misread(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        _payload, meta = _populate(disk)
        doc = json.loads(meta.read_bytes())
        doc["version"] = 99
        meta.write_text(json.dumps(doc))
        _assert_recovered(disk, "newer")

    def test_unpicklable_payload_with_valid_checksum(self, tmp_path):
        import hashlib

        disk = DiskArtifactCache(tmp_path)
        payload, meta = _populate(disk)
        garbage = b"\x80\x04not actually a pickle"
        payload.write_bytes(garbage)
        doc = json.loads(meta.read_bytes())
        doc["checksum"] = hashlib.blake2b(garbage, digest_size=16).hexdigest()
        meta.write_text(json.dumps(doc))
        _assert_recovered(disk, "failed to deserialize")

    def test_payload_replaced_by_directory(self, tmp_path):
        """An OSError on read (here IsADirectoryError) quarantines like
        any other unreadable payload — the move needs only directory
        permissions."""
        disk = DiskArtifactCache(tmp_path)
        payload, _meta = _populate(disk)
        payload.unlink()
        payload.mkdir()
        _assert_recovered(disk, "unreadable payload")

    @pytest.mark.skipif(os.geteuid() == 0,
                        reason="root ignores file permission bits")
    def test_unreadable_payload_permissions(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        payload, _meta = _populate(disk)
        payload.chmod(0o000)
        try:
            _assert_recovered(disk, "unreadable payload")
        finally:
            for leftover in disk.quarantine_dir.glob("*.bin"):
                leftover.chmod(0o644)

    def test_quarantine_never_raises_into_caller(self, tmp_path):
        """Even the worst case — every file unreadable and immovable —
        must surface as a miss, not an exception."""
        disk = DiskArtifactCache(tmp_path)
        payload, _meta = _populate(disk)
        payload.write_bytes(b"junk")
        found, value = disk.load(GRAPH, "basis")
        assert (found, value) == (False, None)


class TestStoreFailures:
    def test_unpicklable_value_reports_false(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        assert disk.store(GRAPH, "bad", lambda: None) is False
        assert disk.stats()["store_failures"] == 1
        assert any(e["kind"] == "store_failed"
                   for e in load_cache_events(tmp_path))


class TestLayering:
    def test_memory_miss_falls_through_to_disk(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        _populate(disk)
        memory = ArtifactCache(backing=disk)
        produced = []
        value = memory.get_or_compute(GRAPH, "basis",
                                      lambda: produced.append(True))
        assert not produced  # served from disk, producer never ran
        assert np.array_equal(value, _value())
        assert disk.stats()["hits"] == 1

    def test_produced_values_pushed_down(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        memory = ArtifactCache(backing=disk)
        memory.get_or_compute(GRAPH, "basis", _value)
        assert disk.stats()["stores"] == 1
        # A *fresh* memory tier (new process, morally) now loads from disk.
        fresh = ArtifactCache(backing=DiskArtifactCache(tmp_path))
        produced = []
        fresh.get_or_compute(GRAPH, "basis",
                             lambda: produced.append(True))
        assert not produced

    def test_memory_hit_never_touches_disk(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        memory = ArtifactCache(backing=disk)
        memory.get_or_compute(GRAPH, "basis", _value)
        before = disk.hits + disk.misses
        memory.get_or_compute(GRAPH, "basis", _value)
        assert disk.hits + disk.misses == before

    def test_corrupt_entry_heals_through_the_stack(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        _populate(disk)
        corrupt_random_cache_entry(tmp_path, seed=1)
        memory = ArtifactCache(backing=disk)
        value = memory.get_or_compute(GRAPH, "basis", _value)
        assert np.array_equal(value, _value())
        assert disk.stats()["quarantined"] == 1

    def test_alignment_identical_with_disk_backing(self, tmp_path):
        import repro
        from repro.noise import make_pair

        pair = make_pair(GRAPH, "one-way", 0.02, seed=4)
        plain = repro.align(pair.source, pair.target, method="grasp", seed=3)
        disk = DiskArtifactCache(tmp_path)
        with caching(True), artifact_cache(ArtifactCache(backing=disk)):
            cold = repro.align(pair.source, pair.target, method="grasp",
                               seed=3)
        # Fresh memory tier: everything must come back from disk.
        with caching(True), artifact_cache(ArtifactCache(
                backing=DiskArtifactCache(tmp_path))):
            warm = repro.align(pair.source, pair.target, method="grasp",
                               seed=3)
        assert np.array_equal(cold.mapping, plain.mapping)
        assert np.array_equal(warm.mapping, plain.mapping)
        assert DiskArtifactCache(tmp_path).stats()["entries"] > 0


class TestMaintenance:
    def test_prune_evicts_oldest_first(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        old_payload, _ = _populate(disk, artifact="old")
        new_payload, _ = _populate(disk, artifact="new")
        os.utime(old_payload, (1, 1))
        removed = disk.prune(max_bytes=new_payload.stat().st_size)
        assert removed == 1
        assert not old_payload.exists() and new_payload.exists()
        found, _ = disk.load(GRAPH, "new")
        assert found

    def test_prune_clears_aged_quarantine(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        payload, _meta = _populate(disk)
        payload.write_bytes(b"junk")
        disk.load(GRAPH, "basis")
        files = list(disk.quarantine_dir.iterdir())
        assert files
        for path in files:
            os.utime(path, (1, 1))
        disk.prune(quarantine_max_age_seconds=60.0)
        assert not list(disk.quarantine_dir.iterdir())

    def test_atomic_write_replaces_not_appends(self, tmp_path):
        target = tmp_path / "x.bin"
        atomic_write_bytes(target, b"first", fsync=False)
        atomic_write_bytes(target, b"2nd", fsync=False)
        assert target.read_bytes() == b"2nd"
        assert not list(tmp_path.glob(".x.bin.*"))  # no temp litter


    def test_prune_report_dry_run_removes_nothing(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        old_payload, _ = _populate(disk, artifact="old")
        new_payload, _ = _populate(disk, artifact="new")
        os.utime(old_payload, (1, 1))
        report = disk.prune_report(max_bytes=new_payload.stat().st_size,
                                   dry_run=True)
        assert report["dry_run"] is True
        assert report["entries_removed"] == 1
        assert report["bytes_freed"] == old_payload.stat().st_size
        assert old_payload.exists() and new_payload.exists()
        assert report["entries_before"] == 2
        assert report["entries_after"] == 1  # what a real prune would leave

    def test_prune_report_accounts_real_eviction(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        old_payload, _ = _populate(disk, artifact="old")
        new_payload, _ = _populate(disk, artifact="new")
        os.utime(old_payload, (1, 1))
        doomed = old_payload.stat().st_size
        report = disk.prune_report(max_bytes=new_payload.stat().st_size)
        assert report["dry_run"] is False
        assert report["entries_removed"] == 1
        assert report["bytes_freed"] == doomed
        assert not old_payload.exists()
        assert report["payload_bytes_after"] == new_payload.stat().st_size

    def test_prune_report_counts_quarantine(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        payload, _meta = _populate(disk)
        payload.write_bytes(b"junk")
        disk.load(GRAPH, "basis")
        for path in disk.quarantine_dir.iterdir():
            os.utime(path, (1, 1))
        report = disk.prune_report(quarantine_max_age_seconds=60.0)
        assert report["quarantine_files_removed"] >= 1
        assert report["quarantine_bytes_freed"] > 0
        assert not list(disk.quarantine_dir.iterdir())

    def test_concurrent_atomic_writes_to_one_target(self, tmp_path):
        """Two threads racing the same destination must both succeed
        (distinct temp names), leaving one of the two payloads."""
        import threading

        target = tmp_path / "contended.bin"
        barrier = threading.Barrier(2)
        errors = []

        def writer(body):
            barrier.wait()
            try:
                for _ in range(50):
                    atomic_write_bytes(target, body, fsync=False)
            except OSError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(body,))
                   for body in (b"alpha", b"bravo")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert target.read_bytes() in (b"alpha", b"bravo")
        assert not list(tmp_path.glob(".contended.bin.*"))


class TestEventLog:
    def test_events_merge_across_writers_sorted(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        disk._record_event("entry_quarantined", key="a", artifact="x",
                           reason="r1")
        other = tmp_path / "events" / "otherhost-999.jsonl"
        other.write_text(json.dumps(
            {"kind": "entry_quarantined", "time": 0.5, "pid": 999,
             "key": "b", "artifact": "y", "reason": "r0"}) + "\n")
        events = load_cache_events(tmp_path)
        assert [e["key"] for e in events] == ["b", "a"]  # time-ordered

    def test_torn_trailing_line_tolerated(self, tmp_path):
        disk = DiskArtifactCache(tmp_path)
        disk._record_event("entry_quarantined", key="a", artifact="x",
                           reason="r")
        with open(disk._events_path(), "a") as handle:
            handle.write('{"kind": "entry_quar')  # crash mid-append
        events = load_cache_events(tmp_path)
        assert len(events) == 1 and events[0]["key"] == "a"
