"""EigenAlign reference tests, including LREA cross-validation (§3.4)."""

import numpy as np
import pytest

from repro.algorithms import LREA, list_algorithms
from repro.algorithms.eigenalign import EigenAlign
from repro.exceptions import AlgorithmError
from repro.graphs import powerlaw_cluster_graph, erdos_renyi_graph
from repro.measures import accuracy
from repro.noise import make_pair


class TestEigenAlign:
    def test_reference_not_registered(self):
        """EigenAlign is a validation reference, not one of the nine."""
        assert "eigenalign" not in list_algorithms()

    def test_perfect_on_isomorphic(self):
        graph = powerlaw_cluster_graph(50, 3, 0.3, seed=131)
        pair = make_pair(graph, "one-way", 0.0, seed=132)
        result = EigenAlign().align(pair.source, pair.target,
                                    assignment="jv")
        assert accuracy(result.mapping, pair.ground_truth) > 0.9

    def test_size_limit_enforced(self):
        big = erdos_renyi_graph(2500, 0.004, seed=0)
        with pytest.raises(AlgorithmError):
            EigenAlign().similarity(big, big)

    def test_reward_ordering_validated(self):
        with pytest.raises(AlgorithmError):
            EigenAlign(s_overlap=0.1, s_noninformative=1.0, s_conflict=0.5)


class TestLreaCrossValidation:
    """LREA's factored power iteration must reproduce the dense reference
    — Nassar et al.'s own validation of the low-rank method."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_similarity_matrices_align(self, seed):
        graph = erdos_renyi_graph(30, 0.25, seed=140 + seed)
        pair = make_pair(graph, "one-way", 0.03, seed=150 + seed)
        dense = EigenAlign(iterations=25).similarity(pair.source, pair.target)
        low_rank = LREA(iterations=25, max_rank=40).similarity(
            pair.source, pair.target
        )
        # Same iterate up to scale: compare normalized matrices.
        dense = dense / np.linalg.norm(dense)
        low_rank = low_rank / np.linalg.norm(low_rank)
        corr = float((dense * low_rank).sum())
        assert corr > 0.99

    def test_same_top_matches(self):
        graph = powerlaw_cluster_graph(40, 3, 0.3, seed=160)
        pair = make_pair(graph, "one-way", 0.0, seed=161)
        dense = EigenAlign().align(pair.source, pair.target, assignment="jv")
        low_rank = LREA(max_rank=40).align(pair.source, pair.target,
                                           assignment="jv")
        agreement = np.mean(dense.mapping == low_rank.mapping)
        assert agreement > 0.85
