"""Tests for the command-line interface."""

import io

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graphs import powerlaw_cluster_graph, write_edgelist
from repro.graphs.operations import permute_graph


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestAlgorithmsCommand:
    def test_lists_all_nine(self):
        code, text = _run(["algorithms"])
        assert code == 0
        for name in ("isorank", "graal", "nsd", "lrea", "regal",
                     "gwl", "s-gwl", "cone", "grasp"):
            assert name in text


class TestDatasetsCommand:
    def test_lists_registry(self):
        code, text = _run(["datasets"])
        assert code == 0
        assert "arenas" in text and "n=1133" in text

    def test_with_scale_generates(self):
        code, text = _run(["datasets", "--scale", "0.05"])
        assert code == 0
        assert "stand-in" in text


class TestAlignCommand:
    @pytest.fixture
    def edge_files(self, tmp_path):
        graph = powerlaw_cluster_graph(40, 3, 0.3, seed=0)
        permuted = permute_graph(
            graph, np.random.default_rng(1).permutation(40)
        )
        a = tmp_path / "a.edges"
        b = tmp_path / "b.edges"
        write_edgelist(graph, a)
        write_edgelist(permuted, b)
        return str(a), str(b)

    def test_align_to_stdout(self, edge_files):
        a, b = edge_files
        code, text = _run(["align", a, b, "--method", "isorank"])
        assert code == 0
        lines = [l for l in text.splitlines() if l and not l.startswith("#")]
        assert len(lines) == 40
        assert any(line.startswith("# isorank") for line in text.splitlines())

    def test_align_to_file(self, edge_files, tmp_path):
        a, b = edge_files
        out_file = tmp_path / "mapping.txt"
        code, text = _run(["align", a, b, "--method", "nsd",
                           "--output", str(out_file)])
        assert code == 0
        assert len(out_file.read_text().splitlines()) == 40

    def test_unknown_method_rejected(self, edge_files):
        a, b = edge_files
        with pytest.raises(SystemExit):
            _run(["align", a, b, "--method", "alphafold"])


class TestExperimentCommand:
    def test_sweep_and_csv(self, tmp_path):
        csv_path = tmp_path / "records.csv"
        code, text = _run([
            "experiment", "--dataset", "ca-netscience",
            "--algorithms", "isorank", "nsd",
            "--levels", "0", "0.02", "--reps", "1",
            "--scale", "0.3", "--csv", str(csv_path),
        ])
        assert code == 0
        assert "isorank" in text and "nsd" in text
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert "accuracy" in header

    def test_invalid_dataset_rejected(self):
        with pytest.raises(SystemExit):
            _run(["experiment", "--dataset", "nope",
                  "--algorithms", "isorank"])

    def test_journal_flag_resumes(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        argv = [
            "experiment", "--dataset", "ca-netscience",
            "--algorithms", "isorank",
            "--levels", "0", "--reps", "1", "--scale", "0.3",
            "--journal", str(journal),
        ]
        code, text = _run(argv)
        assert code == 0
        assert journal.exists()
        assert "journal" in text
        size_after_first = journal.stat().st_size
        # Rerunning the identical command replays from the journal and
        # appends nothing new.
        code, text = _run(argv)
        assert code == 0
        assert "isorank" in text
        assert journal.stat().st_size == size_after_first

    def test_memory_limit_without_timeout_is_a_valid_budget(self):
        """--memory-limit-mb alone builds a memory-only CellBudget: the
        cell still runs in a capped child, it just has no deadline."""
        code, text = _run([
            "experiment", "--dataset", "ca-netscience",
            "--algorithms", "isorank",
            "--levels", "0", "--reps", "1", "--scale", "0.3",
            "--memory-limit-mb", "2048",
        ])
        assert code == 0
        assert "isorank" in text
        assert "failed" in text and "0 failed" in text

    def test_cache_flag_matches_uncached_grid(self):
        """--cache is an execution knob: the printed measure grid is
        identical with and without it."""
        base = [
            "experiment", "--dataset", "ca-netscience",
            "--algorithms", "isorank", "nsd",
            "--levels", "0", "0.02", "--reps", "1", "--scale", "0.3",
        ]
        code, plain_text = _run(base)
        assert code == 0
        code, cached_text = _run(base + ["--cache"])
        assert code == 0
        grid = lambda text: [line for line in text.splitlines()
                             if line.lstrip().startswith(("isorank", "nsd"))]
        assert grid(cached_text) == grid(plain_text)
        assert grid(cached_text)

    def test_timeout_flag_runs_cells_in_children(self):
        code, text = _run([
            "experiment", "--dataset", "ca-netscience",
            "--algorithms", "isorank",
            "--levels", "0", "--reps", "1", "--scale", "0.3",
            "--timeout", "120", "--retries", "2",
        ])
        assert code == 0
        assert "isorank" in text

    def test_workers_flag_matches_serial_grid(self, tmp_path):
        """--workers N prints the same grid as a serial run and leaves a
        journal a serial rerun replays without executing anything."""
        journal = tmp_path / "par.jsonl"
        base = [
            "experiment", "--dataset", "ca-netscience",
            "--algorithms", "isorank", "nsd",
            "--levels", "0", "0.02", "--reps", "1", "--scale", "0.3",
        ]
        code, serial_text = _run(base)
        assert code == 0
        code, parallel_text = _run(base + ["--workers", "2",
                                           "--journal", str(journal)])
        assert code == 0
        grid = lambda text: [l for l in text.splitlines()
                             if "|" in l or "---" in l]
        assert grid(parallel_text) == grid(serial_text)
        size_after = journal.stat().st_size
        code, _ = _run(base + ["--journal", str(journal)])  # serial resume
        assert code == 0
        assert journal.stat().st_size == size_after


class TestTuneCommand:
    def test_single_param_sweep(self):
        code, text = _run([
            "tune", "--dataset", "ca-netscience", "--method", "isorank",
            "--param", "alpha", "--values", "0.5", "0.9",
            "--copies", "1", "--scale", "0.3",
        ])
        assert code == 0
        assert "grid search: isorank" in text
        assert "<- best" in text

    def test_string_values_parsed(self):
        code, text = _run([
            "tune", "--dataset", "ca-netscience", "--method", "isorank",
            "--param", "prior", "--values", "degree", "uniform",
            "--copies", "1", "--scale", "0.3",
        ])
        assert code == 0
        assert "prior=degree" in text


class TestAlignRefine:
    def test_refine_flag(self, tmp_path):
        graph = powerlaw_cluster_graph(40, 3, 0.3, seed=2)
        permuted = permute_graph(
            graph, np.random.default_rng(3).permutation(40)
        )
        a, b = tmp_path / "a.edges", tmp_path / "b.edges"
        write_edgelist(graph, a)
        write_edgelist(permuted, b)
        code, text = _run(["align", str(a), str(b), "--method", "nsd",
                           "--refine"])
        assert code == 0


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
