"""Tests for the command-line interface."""

import io

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graphs import powerlaw_cluster_graph, write_edgelist
from repro.graphs.operations import permute_graph


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestAlgorithmsCommand:
    def test_lists_all_nine(self):
        code, text = _run(["algorithms"])
        assert code == 0
        for name in ("isorank", "graal", "nsd", "lrea", "regal",
                     "gwl", "s-gwl", "cone", "grasp"):
            assert name in text


class TestDatasetsCommand:
    def test_lists_registry(self):
        code, text = _run(["datasets"])
        assert code == 0
        assert "arenas" in text and "n=1133" in text

    def test_with_scale_generates(self):
        code, text = _run(["datasets", "--scale", "0.05"])
        assert code == 0
        assert "stand-in" in text


class TestAlignCommand:
    @pytest.fixture
    def edge_files(self, tmp_path):
        graph = powerlaw_cluster_graph(40, 3, 0.3, seed=0)
        permuted = permute_graph(
            graph, np.random.default_rng(1).permutation(40)
        )
        a = tmp_path / "a.edges"
        b = tmp_path / "b.edges"
        write_edgelist(graph, a)
        write_edgelist(permuted, b)
        return str(a), str(b)

    def test_align_to_stdout(self, edge_files):
        a, b = edge_files
        code, text = _run(["align", a, b, "--method", "isorank"])
        assert code == 0
        lines = [l for l in text.splitlines() if l and not l.startswith("#")]
        assert len(lines) == 40
        assert any(line.startswith("# isorank") for line in text.splitlines())

    def test_align_to_file(self, edge_files, tmp_path):
        a, b = edge_files
        out_file = tmp_path / "mapping.txt"
        code, text = _run(["align", a, b, "--method", "nsd",
                           "--output", str(out_file)])
        assert code == 0
        assert len(out_file.read_text().splitlines()) == 40

    def test_unknown_method_rejected(self, edge_files):
        a, b = edge_files
        with pytest.raises(SystemExit):
            _run(["align", a, b, "--method", "alphafold"])


class TestExperimentCommand:
    def test_sweep_and_csv(self, tmp_path):
        csv_path = tmp_path / "records.csv"
        code, text = _run([
            "experiment", "--dataset", "ca-netscience",
            "--algorithms", "isorank", "nsd",
            "--levels", "0", "0.02", "--reps", "1",
            "--scale", "0.3", "--csv", str(csv_path),
        ])
        assert code == 0
        assert "isorank" in text and "nsd" in text
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert "accuracy" in header

    def test_invalid_dataset_rejected(self):
        with pytest.raises(SystemExit):
            _run(["experiment", "--dataset", "nope",
                  "--algorithms", "isorank"])

    def test_journal_flag_resumes(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        argv = [
            "experiment", "--dataset", "ca-netscience",
            "--algorithms", "isorank",
            "--levels", "0", "--reps", "1", "--scale", "0.3",
            "--journal", str(journal),
        ]
        code, text = _run(argv)
        assert code == 0
        assert journal.exists()
        assert "journal" in text
        size_after_first = journal.stat().st_size
        # Rerunning the identical command replays from the journal and
        # appends nothing new.
        code, text = _run(argv)
        assert code == 0
        assert "isorank" in text
        assert journal.stat().st_size == size_after_first

    def test_memory_limit_without_timeout_is_a_valid_budget(self):
        """--memory-limit-mb alone builds a memory-only CellBudget: the
        cell still runs in a capped child, it just has no deadline."""
        code, text = _run([
            "experiment", "--dataset", "ca-netscience",
            "--algorithms", "isorank",
            "--levels", "0", "--reps", "1", "--scale", "0.3",
            "--memory-limit-mb", "2048",
        ])
        assert code == 0
        assert "isorank" in text
        assert "failed" in text and "0 failed" in text

    def test_cache_flag_matches_uncached_grid(self):
        """--cache is an execution knob: the printed measure grid is
        identical with and without it."""
        base = [
            "experiment", "--dataset", "ca-netscience",
            "--algorithms", "isorank", "nsd",
            "--levels", "0", "0.02", "--reps", "1", "--scale", "0.3",
        ]
        code, plain_text = _run(base)
        assert code == 0
        code, cached_text = _run(base + ["--cache"])
        assert code == 0
        grid = lambda text: [line for line in text.splitlines()
                             if line.lstrip().startswith(("isorank", "nsd"))]
        assert grid(cached_text) == grid(plain_text)
        assert grid(cached_text)

    def test_timeout_flag_runs_cells_in_children(self):
        code, text = _run([
            "experiment", "--dataset", "ca-netscience",
            "--algorithms", "isorank",
            "--levels", "0", "--reps", "1", "--scale", "0.3",
            "--timeout", "120", "--retries", "2",
        ])
        assert code == 0
        assert "isorank" in text

    def test_workers_flag_matches_serial_grid(self, tmp_path):
        """--workers N prints the same grid as a serial run and leaves a
        journal a serial rerun replays without executing anything."""
        journal = tmp_path / "par.jsonl"
        base = [
            "experiment", "--dataset", "ca-netscience",
            "--algorithms", "isorank", "nsd",
            "--levels", "0", "0.02", "--reps", "1", "--scale", "0.3",
        ]
        code, serial_text = _run(base)
        assert code == 0
        code, parallel_text = _run(base + ["--workers", "2",
                                           "--journal", str(journal)])
        assert code == 0
        grid = lambda text: [l for l in text.splitlines()
                             if "|" in l or "---" in l]
        assert grid(parallel_text) == grid(serial_text)
        size_after = journal.stat().st_size
        code, _ = _run(base + ["--journal", str(journal)])  # serial resume
        assert code == 0
        assert journal.stat().st_size == size_after


class TestTuneCommand:
    def test_single_param_sweep(self):
        code, text = _run([
            "tune", "--dataset", "ca-netscience", "--method", "isorank",
            "--param", "alpha", "--values", "0.5", "0.9",
            "--copies", "1", "--scale", "0.3",
        ])
        assert code == 0
        assert "grid search: isorank" in text
        assert "<- best" in text

    def test_string_values_parsed(self):
        code, text = _run([
            "tune", "--dataset", "ca-netscience", "--method", "isorank",
            "--param", "prior", "--values", "degree", "uniform",
            "--copies", "1", "--scale", "0.3",
        ])
        assert code == 0
        assert "prior=degree" in text


class TestAlignRefine:
    def test_refine_flag(self, tmp_path):
        graph = powerlaw_cluster_graph(40, 3, 0.3, seed=2)
        permuted = permute_graph(
            graph, np.random.default_rng(3).permutation(40)
        )
        a, b = tmp_path / "a.edges", tmp_path / "b.edges"
        write_edgelist(graph, a)
        write_edgelist(permuted, b)
        code, text = _run(["align", str(a), str(b), "--method", "nsd",
                           "--refine"])
        assert code == 0


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--service-dir", "/s"])
        assert args.workers == 2 and args.max_depth == 256
        assert args.lease_timeout == 30.0 and args.max_attempts == 3
        assert not args.drain_when_idle and not args.status

    def test_drain_when_idle_completes_batch(self, tmp_path):
        from repro.graphs.generators import erdos_renyi_graph
        from repro.noise import make_pair
        from repro.service import AlignmentRequest, AlignmentService

        service_dir = tmp_path / "svc"
        svc = AlignmentService(service_dir)
        pair = make_pair(erdos_renyi_graph(14, 0.3, seed=1),
                         "one-way", 0.1, seed=1)
        ticket = svc.submit_sync(AlignmentRequest(
            source=pair.source, target=pair.target, algorithm="isorank",
            seed=1, ground_truth=pair.ground_truth))
        svc.close()
        code, text = _run(["serve", "--service-dir", str(service_dir),
                           "--drain-when-idle", "--workers", "1"])
        assert code == 0
        assert "drained" in text
        check = AlignmentService(service_dir)
        assert check.status_sync(ticket.key).state == "done"
        check.close()

    def test_status_reports_health_and_counts(self, tmp_path):
        from repro.service import AlignmentService

        service_dir = tmp_path / "svc"
        svc = AlignmentService(service_dir)
        svc.write_heartbeat()
        svc.close()
        code, text = _run(["serve", "--service-dir", str(service_dir),
                           "--status"])
        assert code == 0
        assert "backlog" in text and "pending" in text


class TestCacheCommand:
    def _seed_cache(self, tmp_path):
        from repro.cache_disk import DiskArtifactCache

        disk = DiskArtifactCache(tmp_path / "cache")
        graph = powerlaw_cluster_graph(20, 2, 0.3, seed=3)
        disk.store(graph, "basis", np.arange(6.0))
        return disk

    def test_requires_cache_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])

    def test_prune_without_bounds_is_an_error(self, tmp_path):
        self._seed_cache(tmp_path)
        code, text = _run(["cache", "prune",
                           "--cache-dir", str(tmp_path / "cache")])
        assert code == 2

    def test_prune_dry_run_removes_nothing(self, tmp_path):
        disk = self._seed_cache(tmp_path)
        code, text = _run(["cache", "prune",
                           "--cache-dir", str(tmp_path / "cache"),
                           "--max-mb", "0", "--dry-run"])
        assert code == 0
        assert "would remove" in text
        assert disk.stats()["entries"] == 1  # untouched

    def test_prune_evicts_over_budget(self, tmp_path):
        disk = self._seed_cache(tmp_path)
        code, text = _run(["cache", "prune",
                           "--cache-dir", str(tmp_path / "cache"),
                           "--max-mb", "0"])
        assert code == 0
        assert "removed" in text
        assert disk.stats()["entries"] == 0

    def test_stats_reports_entry_count(self, tmp_path):
        self._seed_cache(tmp_path)
        code, text = _run(["cache", "stats",
                           "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        assert "entries" in text
