"""Tests for NetLSD heat-trace signatures."""

import numpy as np
import pytest

from repro.exceptions import AlgorithmError
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    powerlaw_cluster_graph,
)
from repro.graphs.operations import permute_graph
from repro.noise import make_pair
from repro.spectral.netlsd import (
    default_timescales,
    netlsd_distance,
    netlsd_signature,
)


class TestSignature:
    def test_shape_and_default_times(self):
        sig = netlsd_signature(cycle_graph(10))
        assert sig.shape == default_timescales().shape

    def test_permutation_invariance(self):
        g = erdos_renyi_graph(40, 0.2, seed=0)
        h = permute_graph(g, np.random.default_rng(1).permutation(40))
        assert np.allclose(netlsd_signature(g), netlsd_signature(h))

    def test_trace_at_zero_equals_n(self):
        g = erdos_renyi_graph(25, 0.3, seed=2)
        sig = netlsd_signature(g, times=[0.0], normalization="none")
        assert sig[0] == pytest.approx(25.0)

    def test_monotone_decreasing_in_t(self):
        sig = netlsd_signature(cycle_graph(12), times=[0.1, 1.0, 10.0],
                               normalization="none")
        assert sig[0] > sig[1] > sig[2]

    def test_complete_normalization_is_one_on_kn(self):
        sig = netlsd_signature(complete_graph(9), normalization="complete")
        assert np.allclose(sig, 1.0)

    def test_validation(self):
        with pytest.raises(AlgorithmError):
            netlsd_signature(Graph(0))
        with pytest.raises(AlgorithmError):
            netlsd_signature(cycle_graph(5), normalization="weird")


class TestDistance:
    def test_zero_for_isomorphic(self):
        g = erdos_renyi_graph(30, 0.2, seed=3)
        h = permute_graph(g, np.random.default_rng(4).permutation(30))
        assert netlsd_distance(g, h) == pytest.approx(0.0, abs=1e-9)

    def test_noise_moves_signature_smoothly(self):
        """Small noise -> small distance; more noise -> larger (stability,
        the property GRASP inherits)."""
        g = powerlaw_cluster_graph(80, 3, 0.3, seed=5)
        small = make_pair(g, "one-way", 0.02, seed=6).target
        large = make_pair(g, "one-way", 0.2, seed=6).target
        assert netlsd_distance(g, small) < netlsd_distance(g, large)

    def test_separates_graph_families(self):
        er = erdos_renyi_graph(60, 10 / 60, seed=7)
        pl = powerlaw_cluster_graph(60, 5, 0.5, seed=7)
        er2 = erdos_renyi_graph(60, 10 / 60, seed=8)
        # Two ER draws are closer to each other than to a powerlaw graph.
        assert netlsd_distance(er, er2) < netlsd_distance(er, pl)
