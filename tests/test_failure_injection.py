"""Failure injection: the harness must degrade gracefully, never crash.

The paper's sweeps run hundreds of cells; a single numerical breakdown,
memory blowout, or misconfiguration must become a failed record (a missing
point in a figure), not a dead experiment.
"""

import tracemalloc

import numpy as np
import pytest

from repro.algorithms.base import (
    ALGORITHM_REGISTRY,
    AlgorithmInfo,
    AlignmentAlgorithm,
    register_algorithm,
)
from repro.exceptions import AlgorithmError, ConvergenceError, ReproError
from repro.graphs import powerlaw_cluster_graph
from repro.harness import ExperimentConfig, run_cell, run_experiment
from repro.noise import make_pair

PAIR = make_pair(powerlaw_cluster_graph(40, 3, 0.3, seed=99), "one-way",
                 0.0, seed=100)


def _make_failing(name: str, exc: BaseException):
    class _Failing(AlignmentAlgorithm):
        info = AlgorithmInfo(
            name=name, year=2026, preprocessing="no", biological=False,
            default_assignment="jv", optimizes="any", time_complexity="O(1)",
            parameters={},
        )

        def _similarity(self, source, target, rng):
            raise exc

    return _Failing


@pytest.fixture(autouse=True)
def _clean_registry():
    yield
    for key in list(ALGORITHM_REGISTRY):
        if key.startswith("_fail"):
            ALGORITHM_REGISTRY.pop(key)


class TestRunCellFailureCapture:
    @pytest.mark.parametrize("exc", [
        AlgorithmError("bad configuration"),
        ConvergenceError("did not converge"),
        np.linalg.LinAlgError("singular matrix"),
        MemoryError("256Gb exceeded"),
    ])
    def test_known_failures_become_records(self, exc):
        name = f"_fail-{type(exc).__name__.lower()}"
        register_algorithm(_make_failing(name, exc))
        record = run_cell(name, PAIR, "pl", 0)
        assert record.failed
        assert type(exc).__name__ in record.error

    def test_unexpected_exception_becomes_record_with_traceback(self):
        """Even exception classes nobody anticipated become ✗ records —
        the paper's protocol never aborts a sweep on one bad cell — and
        the error carries the traceback tail so the bug stays findable."""
        register_algorithm(_make_failing("_fail-type", TypeError("bug")))
        record = run_cell("_fail-type", PAIR, "pl", 0)
        assert record.failed
        assert record.error.startswith("TypeError: bug")
        assert "_similarity" in record.error  # traceback tail names the frame

    def test_process_control_exceptions_propagate(self):
        """KeyboardInterrupt/SystemExit are not cell failures: the user
        (or the harness) is stopping the sweep itself."""
        register_algorithm(
            _make_failing("_fail-interrupt", KeyboardInterrupt()))
        with pytest.raises(KeyboardInterrupt):
            run_cell("_fail-interrupt", PAIR, "pl", 0)
        register_algorithm(_make_failing("_fail-exit", SystemExit(3)))
        with pytest.raises(SystemExit):
            run_cell("_fail-exit", PAIR, "pl", 0)

    @pytest.mark.parametrize("exc", [
        MemoryError("256Gb exceeded"),
        np.linalg.LinAlgError("singular matrix"),
        ReproError("generic library failure"),
    ])
    def test_failed_record_fields_populated(self, exc):
        """Each caught class yields a complete, well-formed failed record."""
        name = f"_fail-fields-{type(exc).__name__.lower()}"
        register_algorithm(_make_failing(name, exc))
        record = run_cell(name, PAIR, "pl", 3)
        assert record.failed
        assert record.error.startswith(type(exc).__name__ + ":")
        assert str(exc) in record.error
        assert record.measures == {}
        assert record.dataset == "pl"
        assert record.repetition == 3
        assert record.noise_type == PAIR.noise_type

    @pytest.mark.parametrize("exc", [
        MemoryError("blowout"),
        np.linalg.LinAlgError("singular"),
        ConvergenceError("stuck"),
    ])
    def test_tracemalloc_stopped_after_failure(self, exc):
        """A failing cell must not leak memory tracing into later cells
        (which would both slow them down and corrupt their peaks)."""
        name = f"_fail-trace-{type(exc).__name__.lower()}"
        register_algorithm(_make_failing(name, exc))
        assert not tracemalloc.is_tracing()
        record = run_cell(name, PAIR, "pl", 0, track_memory=True)
        assert record.failed
        assert not tracemalloc.is_tracing()

    def test_tracemalloc_stopped_after_success(self):
        assert not tracemalloc.is_tracing()
        record = run_cell("isorank", PAIR, "pl", 0, track_memory=True)
        assert not record.failed
        assert record.peak_memory_bytes > 0
        assert not tracemalloc.is_tracing()


class TestSweepContinuesPastFailures:
    def test_mixed_sweep(self):
        register_algorithm(
            _make_failing("_fail-mix", ConvergenceError("nope"))
        )
        config = ExperimentConfig(
            name="mixed",
            algorithms=["isorank", "_fail-mix"],
            noise_levels=(0.0,),
            repetitions=2,
        )
        graph = powerlaw_cluster_graph(40, 3, 0.3, seed=101)
        table = run_experiment(config, {"pl": graph})
        assert len(table) == 4
        good = table.filter(algorithm="isorank")
        bad = table.filter(algorithm="_fail-mix")
        assert all(not r.failed for r in good.records)
        assert all(r.failed for r in bad.records)
        # Aggregation over the healthy algorithm is unaffected.
        assert table.mean("accuracy", algorithm="isorank") > 0.9
        assert np.isnan(table.mean("accuracy", algorithm="_fail-mix"))

    def test_grid_renders_failed_cells_as_dashes(self):
        register_algorithm(
            _make_failing("_fail-grid", ConvergenceError("nope"))
        )
        config = ExperimentConfig(
            name="grid",
            algorithms=["_fail-grid"],
            noise_levels=(0.0,),
            repetitions=1,
        )
        graph = powerlaw_cluster_graph(30, 3, 0.3, seed=102)
        table = run_experiment(config, {"pl": graph})
        assert "--" in table.format_grid("algorithm", "noise_level",
                                         "accuracy")
