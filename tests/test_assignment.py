"""Tests for the assignment back-ends (paper §3 / §6.2)."""

import numpy as np
import pytest
from scipy import sparse
from scipy.optimize import linear_sum_assignment

from repro.assignment import (
    extract_alignment,
    jonker_volgenant,
    nearest_neighbor,
    nearest_neighbor_one_to_one,
    solve_lap,
    sort_greedy,
    sparse_max_weight_matching,
)
from repro.assignment.base import ASSIGNMENT_METHODS
from repro.exceptions import AssignmentError


@pytest.fixture
def sim_3x3():
    return np.array([
        [0.9, 0.1, 0.0],
        [0.8, 0.7, 0.2],
        [0.1, 0.6, 0.5],
    ])


class TestNearestNeighbor:
    def test_picks_row_argmax(self, sim_3x3):
        assert nearest_neighbor(sim_3x3).tolist() == [0, 0, 1]

    def test_many_to_one_allowed(self, sim_3x3):
        mapping = nearest_neighbor(sim_3x3)
        assert len(set(mapping.tolist())) < 3

    def test_one_to_one_variant(self, sim_3x3):
        mapping = nearest_neighbor_one_to_one(sim_3x3)
        matched = mapping[mapping >= 0]
        assert len(set(matched.tolist())) == len(matched)
        # Row 0 (best score 0.9) keeps its favorite column.
        assert mapping[0] == 0

    def test_rejects_nan(self):
        with pytest.raises(AssignmentError):
            nearest_neighbor(np.array([[np.nan, 1.0]]))

    def test_rejects_non_2d(self):
        with pytest.raises(AssignmentError):
            nearest_neighbor(np.ones(3))

    def test_empty(self):
        assert nearest_neighbor(np.empty((0, 3))).size == 0


class TestSortGreedy:
    def test_greedy_order(self, sim_3x3):
        mapping = sort_greedy(sim_3x3)
        # Pairs in similarity order: (0,0)=0.9 taken, (1,0) blocked,
        # (1,1)=0.7 taken, (2,1) blocked, (2,2)=0.5 taken.
        assert mapping.tolist() == [0, 1, 2]

    def test_one_to_one(self):
        rng = np.random.default_rng(0)
        sim = rng.random((20, 20))
        mapping = sort_greedy(sim)
        assert sorted(mapping.tolist()) == list(range(20))

    def test_rectangular_more_rows(self):
        sim = np.array([[1.0, 0.0], [0.9, 0.1], [0.8, 0.2]])
        mapping = sort_greedy(sim)
        assert np.sum(mapping == -1) == 1  # one row unmatched
        matched = mapping[mapping >= 0]
        assert len(set(matched.tolist())) == 2

    def test_rectangular_more_cols(self):
        sim = np.array([[0.1, 0.9, 0.5]])
        assert sort_greedy(sim).tolist() == [1]

    def test_greedy_can_be_suboptimal(self):
        # Greedy takes 10 then is forced into 1 (total 11); optimal is 9+9=18.
        sim = np.array([[10.0, 9.0], [9.0, 1.0]])
        greedy = sort_greedy(sim)
        optimal = jonker_volgenant(sim)
        value = lambda m: sim[np.arange(2), m].sum()
        assert value(greedy) == 11.0
        assert value(optimal) == 18.0


class TestJonkerVolgenant:
    def test_maximizes_similarity(self, sim_3x3):
        mapping = jonker_volgenant(sim_3x3)
        assert sorted(mapping.tolist()) == [0, 1, 2]
        total = sim_3x3[np.arange(3), mapping].sum()
        rows, cols = linear_sum_assignment(-sim_3x3)
        assert total == pytest.approx(sim_3x3[rows, cols].sum())

    @pytest.mark.parametrize("engine", ["python", "scipy"])
    def test_engines_agree_on_value(self, engine):
        rng = np.random.default_rng(1)
        for _ in range(10):
            cost = rng.random((15, 20))
            ours = solve_lap(cost, engine=engine)
            rows, cols = linear_sum_assignment(cost)
            assert cost[np.arange(15), ours].sum() == pytest.approx(
                cost[rows, cols].sum()
            )

    def test_python_engine_square_with_ties(self):
        cost = np.zeros((4, 4))
        mapping = solve_lap(cost, engine="python")
        assert sorted(mapping.tolist()) == [0, 1, 2, 3]

    def test_rows_exceeding_cols(self):
        sim = np.array([[1.0], [2.0], [3.0]])
        mapping = jonker_volgenant(sim)
        assert np.sum(mapping >= 0) == 1
        assert mapping[2] == 0  # the most similar row wins the only column

    def test_non_finite_rejected(self):
        with pytest.raises(AssignmentError):
            solve_lap(np.array([[np.inf, 1.0]]))

    def test_rows_gt_cols_rejected_in_solve_lap(self):
        with pytest.raises(AssignmentError):
            solve_lap(np.zeros((3, 2)))

    def test_unknown_engine_rejected(self):
        with pytest.raises(AssignmentError):
            solve_lap(np.zeros((2, 2)), engine="cuda")

    def test_empty(self):
        assert solve_lap(np.empty((0, 5))).size == 0


class TestSparseMwm:
    def test_respects_sparsity_pattern(self):
        # Dense optimum would match row 0 to col 1, but that entry is absent.
        sim = sparse.csr_matrix(np.array([[1.0, 0.0], [0.5, 0.4]]))
        mapping = sparse_max_weight_matching(sim)
        assert mapping[0] == 0
        assert mapping[1] == 1

    def test_matches_jv_on_dense_pattern(self):
        rng = np.random.default_rng(2)
        sim = rng.random((12, 12)) + 0.01
        dense = jonker_volgenant(sim)
        sparse_map = sparse_max_weight_matching(sparse.csr_matrix(sim))
        value = lambda m: sim[np.arange(12), m].sum()
        assert value(sparse_map) == pytest.approx(value(dense))

    def test_greedy_fallback_when_no_perfect_matching(self):
        # Two rows compete for a single eligible column.
        sim = sparse.csr_matrix(np.array([[0.9, 0.0], [0.5, 0.0]]))
        mapping = sparse_max_weight_matching(sim)
        assert mapping[0] == 0
        assert mapping[1] == -1

    def test_empty_matrix(self):
        mapping = sparse_max_weight_matching(sparse.csr_matrix((3, 3)))
        assert mapping.tolist() == [-1, -1, -1]

    def test_negative_similarities_terminate(self):
        """Regression: raw negative weights sent SciPy's LAPJVsp into an
        infinite loop; our cost shift must keep every input terminating."""
        rng = np.random.default_rng(7)
        sim = sparse.random(40, 40, density=0.15, random_state=7,
                            data_rvs=lambda size: rng.normal(size=size))
        sim = sim.tocsr()
        mapping = sparse_max_weight_matching(sim)
        matched = mapping[mapping >= 0]
        assert len(set(matched.tolist())) == len(matched)

    def test_thin_feasible_pattern_terminates(self):
        """The LREA-style case: a thin candidate pattern with a perfect
        matching must be solved exactly, not fall back to greedy."""
        n = 30
        rng = np.random.default_rng(8)
        perm = rng.permutation(n)
        rows = np.concatenate([np.arange(n), np.arange(n)])
        cols = np.concatenate([perm, rng.integers(0, n, n)])
        data = np.concatenate([np.full(n, 5.0), rng.random(n)])
        sim = sparse.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
        mapping = sparse_max_weight_matching(sim)
        assert np.array_equal(mapping, perm)


class TestExtractAlignment:
    @pytest.mark.parametrize("method", ASSIGNMENT_METHODS)
    def test_all_methods_run(self, method, sim_3x3):
        mapping = extract_alignment(sim_3x3, method)
        assert mapping.shape == (3,)

    def test_unknown_method_rejected(self, sim_3x3):
        with pytest.raises(AssignmentError):
            extract_alignment(sim_3x3, "hungarian-deluxe")

    def test_sparse_input_densified_for_jv(self):
        sim = sparse.csr_matrix(np.eye(4))
        assert extract_alignment(sim, "jv").tolist() == [0, 1, 2, 3]

    def test_oracle_similarity_recovers_permutation(self):
        rng = np.random.default_rng(3)
        perm = rng.permutation(30)
        sim = np.zeros((30, 30))
        sim[np.arange(30), perm] = 1.0
        for method in ("sg", "jv", "nn", "nn-1to1"):
            assert np.array_equal(extract_alignment(sim, method), perm), method
