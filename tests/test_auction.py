"""Tests for the auction LAP solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linear_sum_assignment

from repro.assignment import auction_assignment
from repro.exceptions import AssignmentError


class TestCorrectness:
    def test_identity_benefit(self):
        sim = np.eye(6)
        assert auction_assignment(sim).tolist() == list(range(6))

    def test_permutation_benefit(self):
        rng = np.random.default_rng(0)
        perm = rng.permutation(12)
        sim = np.zeros((12, 12))
        sim[np.arange(12), perm] = 1.0
        assert np.array_equal(auction_assignment(sim), perm)

    def test_exact_on_integer_benefits(self):
        rng = np.random.default_rng(1)
        for _ in range(15):
            n = int(rng.integers(2, 25))
            sim = rng.integers(0, 40, size=(n, n)).astype(float)
            ours = auction_assignment(sim)
            rows, cols = linear_sum_assignment(-sim)
            assert sim[np.arange(n), ours].sum() == sim[rows, cols].sum()

    def test_one_to_one(self):
        rng = np.random.default_rng(2)
        mapping = auction_assignment(rng.random((20, 20)))
        assert sorted(mapping.tolist()) == list(range(20))

    def test_epsilon_bound_on_real_benefits(self):
        """Continuous benefits: within n * final_epsilon of the optimum."""
        rng = np.random.default_rng(3)
        for _ in range(10):
            n = int(rng.integers(3, 30))
            sim = rng.random((n, n))
            ours = auction_assignment(sim)
            rows, cols = linear_sum_assignment(-sim)
            spread = sim.max() - sim.min()
            bound = spread * n / (n + 1) / n * n  # = spread, loose but safe
            gap = sim[rows, cols].sum() - sim[np.arange(n), ours].sum()
            assert 0.0 <= gap <= max(spread, 1e-9)

    def test_empty(self):
        assert auction_assignment(np.empty((0, 0))).size == 0

    @given(st.integers(2, 14), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_integer_optimality(self, n, seed):
        sim = np.random.default_rng(seed).integers(0, 30, (n, n)).astype(float)
        ours = auction_assignment(sim)
        rows, cols = linear_sum_assignment(-sim)
        assert sim[np.arange(n), ours].sum() == pytest.approx(
            sim[rows, cols].sum()
        )


class TestValidation:
    def test_rectangular_rejected(self):
        with pytest.raises(AssignmentError):
            auction_assignment(np.zeros((2, 3)))

    def test_non_finite_rejected(self):
        with pytest.raises(AssignmentError):
            auction_assignment(np.array([[np.inf, 0.0], [0.0, 1.0]]))
