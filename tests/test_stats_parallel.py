"""Parallel and crash-resume guarantees of the statistics layer.

The contract under test: statistics are **bit-identical** however they
are executed — serial, on a worker pool, over a sharded sweep, or
resumed after a SIGKILL — because every resample flows from a derived
seed through chunk-indexed RNG streams.  The SIGKILL test drives a real
child interpreter, exactly like the sweep's own resume-integration
suite.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exceptions import ExperimentError
from repro.graphs import powerlaw_cluster_graph
from repro.harness import ExperimentConfig, run_experiment
from repro.harness.results import ResultTable
from repro.stats import StatsConfig, compute_sweep_stats, stats_journal_path
from repro.stats import parallel as stats_parallel
from tests.test_stats_golden import golden_records

ROOT = Path(__file__).resolve().parent.parent

GRAPH = powerlaw_cluster_graph(40, 3, 0.3, seed=5)

SWEEP = dict(
    name="stats-parallel", algorithms=["isorank", "nsd"],
    noise_levels=(0.0, 0.02), repetitions=2, seed=7,
    stats=True, stats_resamples=256,
)


def _stats_dump(stats):
    """Everything semantically observable, for exact-equality checks."""
    return ([g.to_dict() for g in stats.groups],
            [(c.to_dict(), c.p_holm) for c in stats.comparisons])


class TestWorkerPoolIdentity:
    def test_workers_bit_identical_to_serial(self):
        table = ResultTable(golden_records())
        serial = compute_sweep_stats(table, StatsConfig(resamples=512,
                                                        seed=17))
        pooled = compute_sweep_stats(table, StatsConfig(resamples=512,
                                                        seed=17, workers=4))
        assert _stats_dump(serial) == _stats_dump(pooled)

    def test_pool_reports_progress_per_unit(self):
        table = ResultTable(golden_records())
        seen = []
        compute_sweep_stats(table, StatsConfig(resamples=64, seed=1,
                                               workers=2),
                            progress=seen.append)
        assert len(seen) == len(set(seen)) == 24  # 12 groups + 12 cmps

    def test_worker_error_reraised_in_parent(self):
        # A unit that raises inside a worker must fail the whole
        # computation loudly — stats units are pure functions, so an
        # exception is a bug, never a skippable cell.
        units = [("group", "stats|group|bad", 1,
                  {"noise_type": "one-way", "noise_level": 0.0,
                   "measure": "accuracy", "algorithm": "x",
                   "values": [float("nan"), 1.0]})]
        with pytest.raises(ExperimentError, match="failed in a worker"):
            list(stats_parallel.compute_units_parallel(
                units, StatsConfig(workers=2)))

    def test_dead_pool_detected(self, monkeypatch):
        # Workers that die without reporting (OOM kill, segfault) must
        # surface as an error, not a hang.  The fork start method makes
        # children inherit the monkeypatched compute_unit.
        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("needs fork start method")
        monkeypatch.setattr(stats_parallel, "compute_unit",
                            lambda *a, **k: os._exit(1))
        units = [("group", "stats|group|k", 1,
                  {"noise_type": "one-way", "noise_level": 0.0,
                   "measure": "accuracy", "algorithm": "x",
                   "values": [1.0, 2.0]})]
        with pytest.raises(ExperimentError, match="workers exited"):
            list(stats_parallel.compute_units_parallel(
                units, StatsConfig(workers=1)))

    def test_worker_body_in_process(self):
        # The worker loop itself, driven with plain queues in this
        # process: computes until the sentinel, ships errors as strings.
        import queue

        tasks, results = queue.Queue(), queue.Queue()
        good = ("group", "stats|group|ok", 1,
                {"noise_type": "one-way", "noise_level": 0.0,
                 "measure": "accuracy", "algorithm": "x",
                 "values": [1.0, 2.0, 3.0]})
        bad = ("group", "stats|group|bad", 1,
               {"noise_type": "one-way", "noise_level": 0.0,
                "measure": "accuracy", "algorithm": "x", "values": []})
        for task in (good, bad, None):
            tasks.put(task)
        stats_parallel._stats_worker(tasks, results, StatsConfig())
        key, entry, error = results.get_nowait()
        assert key == "stats|group|ok" and error is None
        assert entry["n"] == 3
        key, entry, error = results.get_nowait()
        assert key == "stats|group|bad" and entry is None
        assert "ExperimentError" in error

    def test_slow_unit_keeps_parent_waiting(self, monkeypatch):
        # A unit outlasting the collection timeout must not be declared
        # dead while its worker is alive and busy.
        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("needs fork start method")
        real = stats_parallel.compute_unit

        def slow(kind, seed, payload, config):
            import time
            time.sleep(1.5)
            return real(kind, seed, payload, config)

        monkeypatch.setattr(stats_parallel, "compute_unit", slow)
        units = [("group", "stats|group|slow", 1,
                  {"noise_type": "one-way", "noise_level": 0.0,
                   "measure": "accuracy", "algorithm": "x",
                   "values": [1.0, 2.0]})]
        out = list(stats_parallel.compute_units_parallel(
            units, StatsConfig(workers=1)))
        assert len(out) == 1 and out[0][0] == "stats|group|slow"

    def test_empty_units_no_pool(self):
        assert list(stats_parallel.compute_units_parallel(
            [], StatsConfig(workers=4))) == []

    def test_pool_context_fallback(self, monkeypatch):
        monkeypatch.setattr(stats_parallel.mp, "get_all_start_methods",
                            lambda: ["spawn"])
        assert stats_parallel._pool_context() is not None


class TestSweepExecutionIdentity:
    def test_serial_workers_shards_agree(self, tmp_path):
        serial = run_experiment(ExperimentConfig(**SWEEP), {"pl": GRAPH})
        pooled = run_experiment(ExperimentConfig(workers=4, **SWEEP),
                                {"pl": GRAPH})
        sharded = run_experiment(
            ExperimentConfig(shards=2, **SWEEP), {"pl": GRAPH},
            journal=str(tmp_path / "sharded.jsonl"))
        assert serial.stats is not None
        assert (_stats_dump(serial.stats) == _stats_dump(pooled.stats)
                == _stats_dump(sharded.stats))

    def test_sharded_sweep_writes_stats_sidecar(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        table = run_experiment(ExperimentConfig(shards=2, **SWEEP),
                               {"pl": GRAPH}, journal=str(journal))
        sidecar = stats_journal_path(journal)
        assert sidecar.exists()
        # The CLI reads the sharded journal through the shard merger and
        # resumes from the very same side-car.
        import io
        from repro.cli import main
        out = io.StringIO()
        assert main(["stats", "--journal", str(journal),
                     "--resamples", "256", "--seed", "7",
                     "--measures", "accuracy", "s3", "mnc"],
                    out=out) == 0
        assert table.stats.format_summary() in out.getvalue()

    def test_fingerprint_rejects_other_parameters(self, tmp_path):
        table = ResultTable(golden_records())
        sidecar = tmp_path / "units.stats"
        compute_sweep_stats(table, StatsConfig(resamples=128, seed=3),
                            journal=sidecar)
        with pytest.raises(ExperimentError, match="fingerprint"):
            compute_sweep_stats(table, StatsConfig(resamples=256, seed=3),
                                journal=sidecar)

    def test_fingerprint_rejects_other_data(self, tmp_path):
        table = ResultTable(golden_records())
        sidecar = tmp_path / "units.stats"
        compute_sweep_stats(table, StatsConfig(resamples=128, seed=3),
                            journal=sidecar)
        smaller = ResultTable(golden_records()[:-1])
        with pytest.raises(ExperimentError, match="fingerprint"):
            compute_sweep_stats(smaller, StatsConfig(resamples=128, seed=3),
                                journal=sidecar)


# Driver for the SIGKILL test: finish (or resume) the sweep, then compute
# journaled statistics, killing the process after N units.  The progress
# callback fires before each unit is computed, so "count > N" means N
# units are durably journaled and the N+1th dies in flight.
DRIVER = """\
import os, signal, sys
from repro.graphs import powerlaw_cluster_graph
from repro.harness import ExperimentConfig, run_experiment
from repro.stats import StatsConfig, compute_sweep_stats

journal_path, kill_after = sys.argv[1], int(sys.argv[2])
config = ExperimentConfig(
    name="stats-kill", algorithms=["isorank", "nsd"],
    noise_levels=(0.0, 0.02), repetitions=2, seed=7,
)
graph = powerlaw_cluster_graph(40, 3, 0.3, seed=5)
table = run_experiment(config, {"pl": graph}, journal=journal_path)
count = 0

def progress(key):
    global count
    count += 1
    with open(journal_path + ".computed", "a") as handle:
        handle.write(key + "\\n")
    if kill_after and count > kill_after:
        os.kill(os.getpid(), signal.SIGKILL)

stats = compute_sweep_stats(
    table, StatsConfig(resamples=256, seed=7),
    journal=journal_path + ".stats", progress=progress)
print(stats.format_summary())
"""


def _driver_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _run_driver(journal, kill_after):
    return subprocess.run(
        [sys.executable, "-c", DRIVER, str(journal), str(kill_after)],
        capture_output=True, text=True, env=_driver_env(), timeout=300,
    )


class TestKillAndResume:
    KILL_AFTER = 5

    def test_sigkill_then_resume_exactly(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        first = _run_driver(journal, self.KILL_AFTER)
        assert first.returncode == -signal.SIGKILL
        computed = tmp_path / "run.jsonl.computed"
        killed_at = len(computed.read_text().splitlines())
        assert killed_at == self.KILL_AFTER + 1  # N journaled, N+1 died

        second = _run_driver(journal, 0)
        assert second.returncode == 0, second.stderr
        log = computed.read_text().splitlines()
        total_units = len(set(log))
        # The rerun recomputed only what the kill left unjournaled: the
        # N journaled units were skipped, so across both runs only the
        # unit that died in flight appears twice.
        assert len(log) == total_units + 1
        assert len(log[self.KILL_AFTER + 1:]) == \
            total_units - self.KILL_AFTER
        assert log[self.KILL_AFTER] in log[self.KILL_AFTER + 1:]

        # A never-killed control run agrees with the resumed one bitwise.
        control_journal = tmp_path / "control.jsonl"
        control = _run_driver(control_journal, 0)
        assert control.returncode == 0, control.stderr
        assert control.stdout == second.stdout
        assert control.stdout.strip()
