"""Tests for the from-scratch k-d tree, validated against SciPy's cKDTree."""

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.assignment import KDTree
from repro.exceptions import AssignmentError


class TestCorrectness:
    @pytest.mark.parametrize("dim", [1, 2, 5, 10])
    def test_matches_ckdtree(self, dim):
        rng = np.random.default_rng(dim)
        points = rng.random((200, dim))
        queries = rng.random((40, dim))
        d_ours, i_ours = KDTree(points).query(queries, k=3)
        d_ref, i_ref = cKDTree(points).query(queries, k=3)
        assert np.allclose(d_ours, d_ref)

    def test_k_one(self):
        rng = np.random.default_rng(0)
        points = rng.random((100, 3))
        d, i = KDTree(points).query(points[:5], k=1)
        assert np.allclose(d[:, 0], 0.0)
        assert i[:, 0].tolist() == [0, 1, 2, 3, 4]

    def test_k_clipped_to_database_size(self):
        points = np.random.default_rng(0).random((4, 2))
        d, i = KDTree(points).query(points[:1], k=10)
        assert d.shape == (1, 4)

    def test_duplicate_points(self):
        points = np.zeros((10, 3))
        d, i = KDTree(points).query(np.zeros((1, 3)), k=5)
        assert np.allclose(d, 0.0)

    def test_high_dimensional_brute_force_path(self):
        rng = np.random.default_rng(1)
        points = rng.random((150, 64))  # above the kd-tree cutoff
        queries = rng.random((20, 64))
        d_ours, i_ours = KDTree(points).query(queries, k=2)
        d_ref, _ = cKDTree(points).query(queries, k=2)
        assert np.allclose(d_ours, d_ref)

    def test_distances_sorted(self):
        rng = np.random.default_rng(2)
        points = rng.random((100, 4))
        d, _ = KDTree(points).query(rng.random((10, 4)), k=5)
        assert np.all(np.diff(d, axis=1) >= -1e-12)


class TestValidation:
    def test_dimension_mismatch_rejected(self):
        tree = KDTree(np.random.default_rng(0).random((10, 3)))
        with pytest.raises(AssignmentError):
            tree.query(np.zeros((1, 2)))

    def test_non_finite_points_rejected(self):
        with pytest.raises(AssignmentError):
            KDTree(np.array([[np.nan, 1.0]]))

    def test_empty_database_query_rejected(self):
        tree = KDTree(np.empty((0, 3)))
        with pytest.raises(AssignmentError):
            tree.query(np.zeros((1, 3)))

    def test_non_2d_rejected(self):
        with pytest.raises(AssignmentError):
            KDTree(np.zeros(5))

    def test_len(self):
        assert len(KDTree(np.zeros((7, 2)))) == 7
