"""Tests for the small shared utilities and the exception hierarchy."""

import numpy as np
import pytest

from repro.exceptions import (
    AlgorithmError,
    AssignmentError,
    ConvergenceError,
    DatasetError,
    ExperimentError,
    GraphError,
    NoiseError,
    ReproError,
)
from repro.util import degree_prior, frobenius_normalize, pairwise_sq_dists


class TestExceptionHierarchy:
    @pytest.mark.parametrize("exc", [
        GraphError, NoiseError, AssignmentError, AlgorithmError,
        ConvergenceError, DatasetError, ExperimentError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_convergence_is_algorithm_error(self):
        assert issubclass(ConvergenceError, AlgorithmError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise DatasetError("nope")


class TestPairwiseSqDists:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        x, y = rng.random((7, 4)), rng.random((5, 4))
        fast = pairwise_sq_dists(x, y)
        naive = ((x[:, None, :] - y[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(fast, naive)

    def test_non_negative_despite_cancellation(self):
        x = np.full((3, 2), 1e8)
        d = pairwise_sq_dists(x, x)
        assert np.all(d >= 0.0)

    def test_self_distance_zero(self):
        x = np.random.default_rng(1).random((6, 3))
        assert np.allclose(np.diag(pairwise_sq_dists(x, x)), 0.0)


class TestFrobeniusNormalize:
    def test_unit_norm(self):
        mat = np.random.default_rng(2).random((4, 5))
        assert np.linalg.norm(frobenius_normalize(mat)) == pytest.approx(1.0)

    def test_zero_matrix_passthrough(self):
        z = np.zeros((3, 3))
        assert np.array_equal(frobenius_normalize(z), z)


class TestDegreePrior:
    def test_symmetric_in_roles(self):
        a, b = np.array([3, 7]), np.array([7, 3, 5])
        prior = degree_prior(a, b)
        assert prior[0, 1] == prior[1, 0] == 1.0

    def test_identical_degrees_score_one(self):
        prior = degree_prior([5], [5])
        assert prior[0, 0] == 1.0

    def test_extreme_mismatch_scores_near_zero(self):
        prior = degree_prior([1], [1000])
        assert prior[0, 0] == pytest.approx(0.001)

    def test_zero_degrees_convention(self):
        prior = degree_prior([0, 3], [0])
        assert prior[0, 0] == 1.0   # isolated vs isolated
        assert prior[1, 0] == 0.0   # degree 3 vs isolated

    def test_range(self):
        rng = np.random.default_rng(3)
        prior = degree_prior(rng.integers(0, 50, 20), rng.integers(0, 50, 30))
        assert np.all(prior >= 0.0) and np.all(prior <= 1.0)
