"""Property-based tests (hypothesis) for the statistics layer.

The statistical layer's contract is behavioral, not numeric: p-values
live in [0, 1] and are roughly uniform under the null, confidence
intervals bracket their point estimate, results are invariant to pair
order, and one integer seed pins every drawn value bit-for-bit — even
across interpreter processes with different ``PYTHONHASHSEED``.  These
properties are exactly what the journaled/parallel harness leans on, so
they are tested directly rather than through the sweep.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ExperimentError
from repro.stats import (
    RESAMPLE_CHUNK,
    StatsConfig,
    bootstrap_ci,
    chunk_rng,
    comparison_seed,
    group_seed,
    holm_correction,
    permutation_test,
    resample_chunks,
)

ROOT = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
samples = st.lists(finite, min_size=2, max_size=40)
seeds = st.integers(0, 2 ** 31 - 1)


# ----------------------------------------------------------------------
# Permutation test
# ----------------------------------------------------------------------

class TestPermutationProperties:
    @given(samples, seeds)
    @settings(max_examples=60, deadline=None)
    def test_p_value_in_unit_interval(self, diffs, seed):
        result = permutation_test(diffs, resamples=200, seed=seed)
        assert 0.0 <= result.p_value <= 1.0
        assert result.statistic == pytest.approx(np.mean(diffs))

    @given(samples, seeds)
    @settings(max_examples=40, deadline=None)
    def test_pair_order_invariance(self, diffs, seed):
        shuffled = list(diffs)
        np.random.default_rng(0).shuffle(shuffled)
        assert (permutation_test(diffs, resamples=300, seed=seed)
                == permutation_test(shuffled, resamples=300, seed=seed))

    @given(samples)
    @settings(max_examples=40, deadline=None)
    def test_exact_path_ignores_seed(self, diffs):
        # With the budget covering all 2^n assignments there is no RNG:
        # any two seeds give the same (exact) answer.
        n = min(len(diffs), 8)
        diffs = diffs[:n]
        first = permutation_test(diffs, resamples=2 ** n, seed=1)
        second = permutation_test(diffs, resamples=2 ** n, seed=999)
        assert first.exact and first == second
        assert first.resamples == 2 ** n

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_monte_carlo_add_one_floor(self, seed):
        # 20 pairs forces the MC path; the add-one estimator can never
        # report an impossible p = 0.
        diffs = list(np.linspace(1.0, 2.0, 20))
        result = permutation_test(diffs, resamples=500, seed=seed)
        assert not result.exact
        assert result.p_value >= 1.0 / 501

    def test_null_distribution_roughly_uniform(self):
        # Symmetric null: each dataset's diffs are sign-symmetric noise,
        # so p-values should be ~Uniform(0, 1).  Checked loosely (mean
        # near 1/2, small-p mass near its nominal share) over a fixed
        # seeded batch — no flakiness.
        rng = np.random.default_rng(42)
        p_values = [
            permutation_test(rng.standard_normal(24),
                             resamples=400, seed=i).p_value
            for i in range(200)
        ]
        assert 0.4 < np.mean(p_values) < 0.6
        assert np.mean(np.asarray(p_values) <= 0.1) < 0.25

    def test_signal_detected(self):
        # A consistent 1-sigma shift across 24 pairs is overwhelming
        # evidence; the permutation test must say so.
        rng = np.random.default_rng(7)
        diffs = rng.standard_normal(24) + 1.0
        assert permutation_test(diffs, resamples=2000, seed=3).p_value < 0.01


# ----------------------------------------------------------------------
# Bootstrap CIs
# ----------------------------------------------------------------------

class TestBootstrapProperties:
    @given(samples, seeds, st.sampled_from(["percentile", "bca"]))
    @settings(max_examples=60, deadline=None)
    def test_ci_brackets_estimate(self, values, seed, method):
        result = bootstrap_ci(values, resamples=300, seed=seed,
                              method=method)
        assert result.low <= result.estimate <= result.high
        assert result.estimate == pytest.approx(np.mean(values))

    @given(samples, seeds, st.sampled_from(["percentile", "bca"]))
    @settings(max_examples=40, deadline=None)
    def test_order_invariance(self, values, seed, method):
        shuffled = list(values)
        np.random.default_rng(1).shuffle(shuffled)
        assert (bootstrap_ci(values, resamples=300, seed=seed,
                             method=method)
                == bootstrap_ci(shuffled, resamples=300, seed=seed,
                                method=method))

    @given(finite, seeds)
    @settings(max_examples=30, deadline=None)
    def test_degenerate_samples_collapse(self, value, seed):
        single = bootstrap_ci([value], resamples=100, seed=seed)
        constant = bootstrap_ci([value] * 5, resamples=100, seed=seed)
        for result in (single, constant):
            assert result.low == result.estimate == result.high

    @given(samples, seeds)
    @settings(max_examples=30, deadline=None)
    def test_wider_confidence_is_wider(self, values, seed):
        narrow = bootstrap_ci(values, confidence=0.80, resamples=400,
                              seed=seed, method="percentile")
        wide = bootstrap_ci(values, confidence=0.99, resamples=400,
                            seed=seed, method="percentile")
        assert wide.low <= narrow.low and narrow.high <= wide.high

    def test_percentile_coverage_near_nominal(self):
        # 90% CIs over repeated N(0,1) samples should cover the true
        # mean (0) close to 90% of the time.  Fixed seeds, loose band.
        rng = np.random.default_rng(11)
        covered = 0
        trials = 120
        for i in range(trials):
            result = bootstrap_ci(rng.standard_normal(30),
                                  confidence=0.90, resamples=400,
                                  seed=i, method="percentile")
            covered += result.low <= 0.0 <= result.high
        assert 0.78 <= covered / trials <= 0.98


# ----------------------------------------------------------------------
# Holm correction
# ----------------------------------------------------------------------

class TestHolmProperties:
    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_adjusted_dominates_raw_and_caps_at_one(self, p_values):
        adjusted = holm_correction(p_values)
        assert len(adjusted) == len(p_values)
        for raw, adj in zip(p_values, adjusted):
            assert raw <= adj <= 1.0

    @given(st.lists(st.floats(0.0, 1.0), min_size=2, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_raw_order(self, p_values):
        adjusted = holm_correction(p_values)
        pairs = sorted(zip(p_values, adjusted))
        for (_, first), (_, second) in zip(pairs, pairs[1:]):
            assert first <= second

    @given(st.floats(0.0, 1.0), st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_bonferroni_at_the_smallest(self, p, m):
        # The smallest raw p is scaled by the full family size (capped).
        family = [p] + [1.0] * (m - 1)
        assert holm_correction(family)[0] == pytest.approx(min(1.0, m * p))

    def test_empty_family(self):
        assert holm_correction([]) == []

    def test_matches_sequential_procedure(self):
        # adjusted < alpha must reproduce the classical step-down walk.
        p_values = [0.001, 0.008, 0.039, 0.041, 0.27]
        alpha = 0.05
        adjusted = holm_correction(p_values)
        sequential = []
        for rank, p in enumerate(sorted(p_values)):
            if p > alpha / (len(p_values) - rank):
                break
            sequential.append(p)
        rejected = sorted(p for p, a in zip(p_values, adjusted)
                          if a < alpha)
        assert rejected == sequential


# ----------------------------------------------------------------------
# Chunked seeding
# ----------------------------------------------------------------------

class TestChunking:
    @given(st.integers(1, 10_000), st.integers(1, 512))
    @settings(max_examples=60, deadline=None)
    def test_chunks_partition_the_budget(self, resamples, chunk):
        pieces = resample_chunks(resamples, chunk)
        assert [index for index, _ in pieces] == list(range(len(pieces)))
        assert sum(count for _, count in pieces) == resamples
        assert all(1 <= count <= chunk for _, count in pieces)

    @given(seeds, st.integers(0, 64))
    @settings(max_examples=40, deadline=None)
    def test_chunk_rng_is_reproducible_and_distinct(self, seed, index):
        first = chunk_rng(seed, index).integers(0, 2 ** 30, size=8)
        second = chunk_rng(seed, index).integers(0, 2 ** 30, size=8)
        np.testing.assert_array_equal(first, second)
        other = chunk_rng(seed, index + 1).integers(0, 2 ** 30, size=8)
        assert not np.array_equal(first, other)

    def test_default_chunk_constant(self):
        assert RESAMPLE_CHUNK >= 1


class TestCrossProcessDeterminism:
    def test_bit_identical_across_interpreters(self):
        # Two fresh interpreters with different PYTHONHASHSEED must
        # reproduce the exact same p-values, CI endpoints, and derived
        # unit seeds — the property the journal leans on.
        script = (
            "from repro.stats import (permutation_test, bootstrap_ci, "
            "group_seed, comparison_seed)\n"
            "diffs = [0.11, -0.02, 0.07, 0.05, -0.01] * 5\n"
            "p = permutation_test(diffs, resamples=999, seed=123)\n"
            "b = bootstrap_ci(diffs, resamples=999, seed=123)\n"
            "print(repr((p.p_value, b.low, b.high, "
            "group_seed(3, 'one-way', 0.05, 's3', 'isorank'), "
            "comparison_seed(3, 'one-way', 0.05, 's3', 'nsd', 'cone'))))\n"
        )
        outputs = []
        for hash_seed in ("0", "31337"):
            env = dict(os.environ)
            env["PYTHONPATH"] = str(ROOT / "src") + (
                os.pathsep + env["PYTHONPATH"]
                if env.get("PYTHONPATH") else ""
            )
            env["PYTHONHASHSEED"] = hash_seed
            proc = subprocess.run([sys.executable, "-c", script],
                                  capture_output=True, text=True, env=env,
                                  timeout=120)
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]


# ----------------------------------------------------------------------
# Validation errors
# ----------------------------------------------------------------------

class TestValidation:
    def test_empty_and_non_finite_samples_rejected(self):
        with pytest.raises(ExperimentError, match="non-empty"):
            permutation_test([])
        with pytest.raises(ExperimentError, match="finite"):
            permutation_test([0.1, float("nan")])
        with pytest.raises(ExperimentError, match="non-empty"):
            bootstrap_ci([])
        with pytest.raises(ExperimentError, match="finite"):
            bootstrap_ci([0.1, float("inf")])

    def test_bad_budgets_rejected(self):
        with pytest.raises(ExperimentError, match="resamples"):
            permutation_test([0.1, 0.2], resamples=0)
        with pytest.raises(ExperimentError, match="chunk"):
            permutation_test([0.1, 0.2], resamples=10, chunk=0)
        with pytest.raises(ExperimentError, match="resamples"):
            resample_chunks(-3)

    def test_bad_bootstrap_parameters_rejected(self):
        with pytest.raises(ExperimentError, match="confidence"):
            bootstrap_ci([0.1, 0.2], confidence=1.0)
        with pytest.raises(ExperimentError, match="method"):
            bootstrap_ci([0.1, 0.2], method="studentized")

    def test_bad_p_values_rejected(self):
        with pytest.raises(ExperimentError, match=r"\[0, 1\]"):
            holm_correction([0.5, 1.5])

    @pytest.mark.parametrize("kwargs", [
        dict(resamples=0),
        dict(confidence=0.0),
        dict(confidence=1.0),
        dict(alpha=0.0),
        dict(alpha=1.0),
        dict(bootstrap_method="jackknife"),
        dict(min_pairs=0),
        dict(workers=0),
    ])
    def test_stats_config_validation(self, kwargs):
        with pytest.raises(ExperimentError):
            StatsConfig(**kwargs)

    def test_stats_config_defaults_valid(self):
        config = StatsConfig()
        assert config.resamples == 2000
        assert config.bootstrap_method == "bca"
        assert config.workers == 1
