"""Property-based tests on the noise models and their invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import erdos_renyi_graph
from repro.measures import accuracy, edge_correctness
from repro.noise import (
    distance_noise_pair,
    make_pair,
    node_removal_pair,
    poisson_edge_pair,
)


def _graph(seed):
    return erdos_renyi_graph(40, 0.18, seed=seed % 5000)


class TestMakePairProperties:
    @given(st.integers(0, 2 ** 31 - 1),
           st.sampled_from(["one-way", "multimodal", "two-way"]),
           st.floats(0.0, 0.25))
    @settings(max_examples=25, deadline=None)
    def test_noise_budget_respected(self, seed, noise_type, level):
        graph = _graph(seed)
        pair = make_pair(graph, noise_type, level, seed=seed)
        removed = int(round(level * graph.num_edges))
        if noise_type == "one-way":
            assert pair.target.num_edges == graph.num_edges - removed
        elif noise_type == "multimodal":
            assert pair.target.num_edges == graph.num_edges
        else:
            assert pair.source.num_edges == graph.num_edges - removed
            assert pair.target.num_edges == graph.num_edges - removed

    @given(st.integers(0, 2 ** 31 - 1), st.floats(0.0, 0.25))
    @settings(max_examples=20, deadline=None)
    def test_truth_is_bijection(self, seed, level):
        pair = make_pair(_graph(seed), "one-way", level, seed=seed)
        truth = pair.ground_truth
        assert sorted(truth.tolist()) == list(range(truth.size))

    @given(st.integers(0, 2 ** 31 - 1), st.floats(0.0, 0.2))
    @settings(max_examples=15, deadline=None)
    def test_truth_edge_conservation_bounds(self, seed, level):
        """The true mapping conserves exactly (m - k)/m source edges under
        one-way noise, and at least that under multimodal (an addition can
        coincidentally recreate a removed pair, never destroy one more)."""
        graph = _graph(seed)
        if graph.num_edges == 0:
            return
        k = int(round(level * graph.num_edges))
        floor = (graph.num_edges - k) / graph.num_edges
        ow = make_pair(graph, "one-way", level, seed=seed)
        mm = make_pair(graph, "multimodal", level, seed=seed)
        ec_ow = edge_correctness(ow.source, ow.target, ow.ground_truth)
        ec_mm = edge_correctness(mm.source, mm.target, mm.ground_truth)
        assert ec_ow == pytest.approx(floor)
        assert ec_mm >= floor - 1e-9


class TestExtendedNoiseProperties:
    @given(st.integers(0, 2 ** 31 - 1), st.floats(0.0, 0.3))
    @settings(max_examples=15, deadline=None)
    def test_node_removal_sizes(self, seed, fraction):
        graph = _graph(seed)
        pair = node_removal_pair(graph, fraction, seed=seed)
        removed = int(round(fraction * graph.num_nodes))
        assert pair.target.num_nodes == graph.num_nodes - removed
        assert int(np.sum(pair.ground_truth == -1)) == removed
        assert accuracy(pair.ground_truth, pair.ground_truth) in (0.0, 1.0)

    @given(st.integers(0, 2 ** 31 - 1), st.floats(0.0, 0.2))
    @settings(max_examples=10, deadline=None)
    def test_distance_noise_node_count_fixed(self, seed, level):
        graph = _graph(seed)
        pair = distance_noise_pair(graph, level, seed=seed)
        assert pair.target.num_nodes == graph.num_nodes

    @given(st.integers(0, 2 ** 31 - 1), st.floats(0.0, 0.4))
    @settings(max_examples=10, deadline=None)
    def test_poisson_truth_valid(self, seed, intensity):
        graph = _graph(seed)
        pair = poisson_edge_pair(graph, intensity, seed=seed)
        truth = pair.ground_truth
        assert sorted(truth.tolist()) == list(range(graph.num_nodes))
