"""Tests for edge-list I/O."""

import pytest

from repro.exceptions import DatasetError
from repro.graphs import Graph, erdos_renyi_graph, read_edgelist, write_edgelist


class TestRoundTrip:
    def test_write_read(self, tmp_path, karate_like):
        path = tmp_path / "g.txt"
        write_edgelist(karate_like, path)
        loaded = read_edgelist(path, relabel=False)
        assert loaded == karate_like

    def test_header_written_and_skipped(self, tmp_path):
        g = Graph(3, [(0, 1), (1, 2)])
        path = tmp_path / "g.txt"
        write_edgelist(g, path, header="test graph\nline two")
        text = path.read_text()
        assert text.startswith("# test graph")
        assert read_edgelist(path, relabel=False) == g


class TestReading:
    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n% other comment\n0 1\n1 2\n")
        g = read_edgelist(path, relabel=False)
        assert g.num_edges == 2

    def test_relabeling_compacts_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("10 20\n20 35\n")
        g, mapping = read_edgelist(path, return_mapping=True)
        assert g.num_nodes == 3
        assert mapping == {10: 0, 20: 1, 35: 2}
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_trailing_columns_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0.5 123456\n1 2 0.7 123457\n")
        assert read_edgelist(path, relabel=False).num_edges == 2

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n")
        assert read_edgelist(path, relabel=False).num_edges == 1

    def test_duplicate_edges_merged(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 0\n0 1\n")
        assert read_edgelist(path, relabel=False).num_edges == 1

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(DatasetError):
            read_edgelist(path)

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(DatasetError):
            read_edgelist(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nothing\n")
        g = read_edgelist(path)
        assert g.num_nodes == 0


class TestContiguityValidation:
    def test_gap_in_ids_rejected_without_relabel(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 3\n")
        with pytest.raises(DatasetError, match="not contiguous"):
            read_edgelist(path, relabel=False)

    def test_error_names_first_missing_id(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 5\n")
        with pytest.raises(DatasetError, match="first missing id 2"):
            read_edgelist(path, relabel=False)

    def test_negative_id_rejected_without_relabel(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("-1 0\n")
        with pytest.raises(DatasetError, match="negative"):
            read_edgelist(path, relabel=False)

    def test_relabel_accepts_gappy_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 3\n")
        g = read_edgelist(path, relabel=True)
        assert (g.num_nodes, g.num_edges) == (3, 2)

    def test_contiguous_ids_still_accepted(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        g = read_edgelist(path, relabel=False)
        assert (g.num_nodes, g.num_edges) == (3, 2)
