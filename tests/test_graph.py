"""Unit tests for the core Graph type."""

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import GraphError
from repro.graphs import Graph


class TestConstruction:
    def test_basic(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_nodes == 4
        assert g.num_edges == 3

    def test_empty_graph(self):
        g = Graph(5)
        assert g.num_nodes == 5
        assert g.num_edges == 0
        assert g.degrees.sum() == 0

    def test_zero_nodes(self):
        g = Graph(0)
        assert g.num_nodes == 0
        assert len(g) == 0

    def test_duplicate_edges_merged(self):
        g = Graph(3, [(0, 1), (0, 1), (1, 0)])
        assert g.num_edges == 1

    def test_reversed_edges_canonicalized(self):
        g = Graph(3, [(2, 0)])
        assert g.edges().tolist() == [[0, 2]]

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(1, 1)])

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 3)])
        with pytest.raises(GraphError):
            Graph(3, [(-1, 0)])

    def test_negative_node_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, np.array([[0, 1, 2]]))

    def test_from_numpy_edges(self):
        edges = np.array([[0, 1], [1, 2]])
        g = Graph(3, edges)
        assert g.num_edges == 2

    def test_from_adjacency_dense(self):
        adj = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=float)
        g = Graph.from_adjacency(adj)
        assert g.num_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_from_adjacency_sparse(self):
        adj = sparse.csr_matrix(
            np.array([[0, 1], [1, 0]], dtype=float)
        )
        g = Graph.from_adjacency(adj)
        assert g.num_edges == 1

    def test_from_adjacency_asymmetric_rejected(self):
        adj = np.array([[0, 1], [0, 0]], dtype=float)
        with pytest.raises(GraphError):
            Graph.from_adjacency(adj)

    def test_from_adjacency_nonzero_diagonal_rejected(self):
        adj = np.array([[1.0, 0.0], [0.0, 0.0]])
        with pytest.raises(GraphError):
            Graph.from_adjacency(adj)

    def test_from_adjacency_nonsquare_rejected(self):
        with pytest.raises(GraphError):
            Graph.from_adjacency(np.zeros((2, 3)))


class TestAccessors:
    def test_degrees(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degrees.tolist() == [3, 1, 1, 1]
        assert g.degree(0) == 3

    def test_degrees_read_only(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.degrees[0] = 99

    def test_neighbors_sorted(self):
        g = Graph(5, [(2, 4), (2, 0), (2, 3)])
        assert g.neighbors(2).tolist() == [0, 3, 4]

    def test_neighbors_isolated(self):
        g = Graph(3, [(0, 1)])
        assert g.neighbors(2).size == 0

    def test_has_edge(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(0, 0)
        assert not g.has_edge(0, 99)

    def test_edge_set(self):
        g = Graph(3, [(1, 0), (2, 1)])
        assert g.edge_set() == {(0, 1), (1, 2)}

    def test_average_degree(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.average_degree == pytest.approx(1.5)
        assert Graph(0).average_degree == 0.0

    def test_density(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.density == pytest.approx(3 / 6)
        assert Graph(1).density == 0.0

    def test_adjacency_symmetric(self):
        g = Graph(4, [(0, 1), (1, 3)])
        adj = g.adjacency(dense=True)
        assert np.array_equal(adj, adj.T)
        assert adj.sum() == 4  # each edge twice

    def test_adjacency_sparse_matches_dense(self):
        g = Graph(5, [(0, 1), (2, 4), (1, 3)])
        assert np.array_equal(g.adjacency().toarray(), g.adjacency(dense=True))

    def test_adjacency_is_fresh_copy(self):
        g = Graph(3, [(0, 1)])
        adj = g.adjacency()
        adj[0, 1] = 7.0
        assert g.adjacency()[0, 1] == 1.0


class TestDunder:
    def test_len_iter_contains(self):
        g = Graph(3, [(0, 1)])
        assert len(g) == 3
        assert list(g) == [0, 1, 2]
        assert 2 in g
        assert 3 not in g
        assert "x" not in g

    def test_equality(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (0, 1)])
        c = Graph(3, [(0, 1)])
        assert a == b
        assert a != c
        assert a != "not a graph"

    def test_hash_consistent_with_eq(self):
        a = Graph(3, [(0, 1)])
        b = Graph(3, [(1, 0)])
        assert hash(a) == hash(b)

    def test_repr(self):
        assert repr(Graph(3, [(0, 1)])) == "Graph(n=3, m=1)"
