"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linear_sum_assignment

from repro.assignment import jonker_volgenant, sort_greedy
from repro.assignment.jv import solve_lap
from repro.graphlets import orbit_counts
from repro.graphs import Graph, erdos_renyi_graph
from repro.graphs.operations import connected_components, permute_graph
from repro.measures import (
    accuracy,
    edge_correctness,
    matched_neighborhood_consistency,
    symmetric_substructure_score,
)
from repro.noise import make_pair
from repro.ot import sinkhorn


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

@st.composite
def small_graphs(draw, min_nodes=2, max_nodes=16):
    """A random simple graph as (num_nodes, edge list)."""
    n = draw(st.integers(min_nodes, max_nodes))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=len(possible),
                          unique=True)) if possible else []
    return Graph(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))


@st.composite
def permutations(draw, size):
    seed = draw(st.integers(0, 2 ** 31 - 1))
    return np.random.default_rng(seed).permutation(size)


# ----------------------------------------------------------------------
# Graph invariants
# ----------------------------------------------------------------------

class TestGraphProperties:
    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_handshake_lemma(self, g):
        assert g.degrees.sum() == 2 * g.num_edges

    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_adjacency_roundtrip(self, g):
        assert Graph.from_adjacency(g.adjacency()) == g

    @given(small_graphs(), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_permutation_preserves_structure(self, g, seed):
        perm = np.random.default_rng(seed).permutation(g.num_nodes)
        h = permute_graph(g, perm)
        assert h.num_edges == g.num_edges
        assert sorted(h.degrees.tolist()) == sorted(g.degrees.tolist())
        assert np.array_equal(h.degrees[perm], g.degrees)

    @given(small_graphs(), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_components_invariant_under_permutation(self, g, seed):
        perm = np.random.default_rng(seed).permutation(g.num_nodes)
        h = permute_graph(g, perm)
        labels_g = connected_components(g)
        labels_h = connected_components(h)
        assert (np.bincount(labels_g).tolist().sort()
                == np.bincount(labels_h).tolist().sort())


class TestOrbitProperties:
    @given(small_graphs(min_nodes=3, max_nodes=12), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_orbit_equivariance(self, g, seed):
        perm = np.random.default_rng(seed).permutation(g.num_nodes)
        counts = orbit_counts(g)
        counts_perm = orbit_counts(permute_graph(g, perm))
        assert np.array_equal(counts, counts_perm[perm])

    @given(small_graphs(min_nodes=3, max_nodes=12))
    @settings(max_examples=25, deadline=None)
    def test_orbit_totals_consistent(self, g):
        counts = orbit_counts(g)
        assert counts[:, 0].sum() == 2 * g.num_edges
        assert counts[:, 3].sum() % 3 == 0
        assert counts[:, 6].sum() == 3 * counts[:, 7].sum()
        assert counts[:, 14].sum() % 4 == 0


# ----------------------------------------------------------------------
# Assignment invariants
# ----------------------------------------------------------------------

class TestAssignmentProperties:
    @given(st.integers(1, 12), st.integers(1, 12), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_python_jv_optimal(self, rows, cols, seed):
        if rows > cols:
            rows, cols = cols, rows
        cost = np.random.default_rng(seed).random((rows, cols))
        ours = solve_lap(cost, engine="python")
        ref_rows, ref_cols = linear_sum_assignment(cost)
        assert cost[np.arange(rows), ours].sum() == pytest.approx(
            cost[ref_rows, ref_cols].sum()
        )

    @given(st.integers(1, 15), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_jv_at_least_as_good_as_greedy(self, n, seed):
        sim = np.random.default_rng(seed).random((n, n))
        jv_map = jonker_volgenant(sim)
        sg_map = sort_greedy(sim)
        value = lambda m: sim[np.arange(n), m].sum()
        assert value(jv_map) >= value(sg_map) - 1e-9

    @given(st.integers(2, 15), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_sort_greedy_one_to_one(self, n, seed):
        sim = np.random.default_rng(seed).random((n, n))
        mapping = sort_greedy(sim)
        assert sorted(mapping.tolist()) == list(range(n))


# ----------------------------------------------------------------------
# Measures invariants
# ----------------------------------------------------------------------

class TestMeasureProperties:
    @given(small_graphs(min_nodes=3, max_nodes=14),
           st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_measures_bounded(self, g, seed):
        rng = np.random.default_rng(seed)
        mapping = rng.permutation(g.num_nodes)
        for fn in (edge_correctness, symmetric_substructure_score,
                   matched_neighborhood_consistency):
            value = fn(g, g, mapping)
            assert 0.0 <= value <= 1.0

    @given(small_graphs(min_nodes=3, max_nodes=14))
    @settings(max_examples=30, deadline=None)
    def test_identity_mapping_perfect(self, g):
        mapping = np.arange(g.num_nodes)
        assert accuracy(mapping, mapping) == 1.0
        if g.num_edges:
            assert edge_correctness(g, g, mapping) == 1.0
            assert symmetric_substructure_score(g, g, mapping) == 1.0
        assert matched_neighborhood_consistency(g, g, mapping) == 1.0

    @given(st.integers(0, 2 ** 31 - 1),
           st.sampled_from(["one-way", "multimodal", "two-way"]),
           st.floats(0.0, 0.2))
    @settings(max_examples=20, deadline=None)
    def test_truth_mapping_has_perfect_accuracy(self, seed, noise_type, level):
        g = erdos_renyi_graph(30, 0.2, seed=seed % 1000)
        pair = make_pair(g, noise_type, level, seed=seed)
        assert accuracy(pair.ground_truth, pair.ground_truth) == 1.0
        # Under one-way noise the truth preserves all target edges backwards:
        # every surviving source edge maps onto a target edge.
        if noise_type == "one-way" and g.num_edges:
            ec = edge_correctness(pair.source, pair.target, pair.ground_truth)
            assert ec == pytest.approx(
                pair.target.num_edges / pair.source.num_edges, abs=1e-9
            )


# ----------------------------------------------------------------------
# OT invariants
# ----------------------------------------------------------------------

class TestSinkhornProperties:
    @given(st.integers(2, 10), st.integers(2, 10), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_plan_is_coupling(self, n, m, seed):
        cost = np.random.default_rng(seed).random((n, m))
        plan = sinkhorn(cost, epsilon=0.1)
        assert np.all(plan >= 0)
        assert np.allclose(plan.sum(axis=1), 1.0 / n, atol=1e-6)
        assert plan.sum() == pytest.approx(1.0, abs=1e-6)

    @given(st.integers(2, 8), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_gibbs_kernel_cross_ratio(self, n, seed):
        """A converged Sinkhorn plan is diag(a) exp(-C/eps) diag(b), so the
        2x2 cross-ratio of plan entries must equal the kernel's cross-ratio
        (the scalings cancel)."""
        rng = np.random.default_rng(seed)
        cost = rng.random((n, n))
        eps = 0.2
        plan = sinkhorn(cost, epsilon=eps, max_iter=5000, tol=1e-13)
        i1, i2, j1, j2 = 0, n - 1, 0, n - 1
        lhs = np.log(plan[i1, j1]) + np.log(plan[i2, j2]) \
            - np.log(plan[i1, j2]) - np.log(plan[i2, j1])
        rhs = -(cost[i1, j1] + cost[i2, j2]
                - cost[i1, j2] - cost[i2, j1]) / eps
        assert lhs == pytest.approx(rhs, abs=1e-3)
