"""Unit and property tests for the alignment service front-end.

Covers the ticket state machine (strict live API, lenient crash
replay), the durable request queue (admission, claims, stale-lease
reclaim), and the service itself: idempotent submission under
concurrent races (hypothesis), backpressure, deadlines, cancellation,
drain, and restart recovery.  The SIGKILL chaos scenario lives in
``test_service_chaos.py``.
"""

import json
import os
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ExperimentError
from repro.graphs.generators import erdos_renyi_graph
from repro.harness.results import RunRecord
from repro.harness.runner import run_cell
from repro.harness.scheduler import lease_path, try_acquire_lease
from repro.noise import GraphPair, make_pair
from repro.service import (
    DEFAULT_MEASURES,
    AlignmentRequest,
    AlignmentService,
    DurableRequestQueue,
    QueueFull,
    ServiceUnavailable,
    TicketError,
    TicketStore,
    load_service_events,
    read_health,
    ticket_key,
)

G1 = erdos_renyi_graph(16, 0.3, seed=1)
G2 = erdos_renyi_graph(16, 0.3, seed=2)


def fast_record(request, measures=None):
    return RunRecord(
        algorithm=request.algorithm, dataset="service",
        noise_type="service", noise_level=0.0, repetition=0,
        assignment=request.assignment,
        measures=measures or {"s3": 1.0},
        similarity_time=0.0, assignment_time=0.0,
    )


def fast_runner(request, budget):
    return fast_record(request)


def request_for(seed=0, **overrides):
    pair = make_pair(erdos_renyi_graph(14, 0.3, seed=seed),
                     "one-way", 0.1, seed=seed)
    options = dict(source=pair.source, target=pair.target,
                   algorithm="isorank", seed=seed)
    options.update(overrides)
    return AlignmentRequest(**options)


class TestTicketKey:
    def test_deterministic_and_content_addressed(self):
        a = ticket_key(G1.content_digest(), G2.content_digest(), "isorank")
        b = ticket_key(G1.content_digest(), G2.content_digest(), "isorank")
        assert a == b

    def test_everything_that_changes_the_work_changes_the_key(self):
        base = dict(params={"alpha": 0.5}, assignment="jv",
                    measures=("s3",), seed=0)
        key = ticket_key(G1.content_digest(), G2.content_digest(),
                         "isorank", **base)
        for mutation in (
            dict(params={"alpha": 0.6}),
            dict(assignment="greedy"),
            dict(measures=("s3", "mnc")),
            dict(seed=1),
        ):
            other = ticket_key(G1.content_digest(), G2.content_digest(),
                               "isorank", **{**base, **mutation})
            assert other != key, mutation
        assert ticket_key(G2.content_digest(), G1.content_digest(),
                          "isorank", **base) != key

    def test_ground_truth_participates_when_supplied(self):
        truth = np.arange(16, dtype=np.int64)
        with_truth = ticket_key(G1.content_digest(), G2.content_digest(),
                                "isorank",
                                ground_truth_digest=truth.tobytes())
        without = ticket_key(G1.content_digest(), G2.content_digest(),
                             "isorank")
        assert with_truth != without

    def test_deadline_is_not_identity(self):
        fast = request_for(0, deadline_seconds=1.0)
        slow = request_for(0, deadline_seconds=None)
        assert fast.key() == slow.key()


class TestTicketStore:
    def test_submit_is_idempotent(self, tmp_path):
        store = TicketStore(tmp_path)
        first, created = store.submit("k1", "isorank")
        again, created_again = store.submit("k1", "isorank")
        assert created and not created_again
        assert first == again
        assert len(store) == 1

    def test_duplicate_submit_returns_current_state_unchanged(self, tmp_path):
        store = TicketStore(tmp_path)
        store.submit("k1", "isorank")
        store.transition("k1", "leased")
        store.transition("k1", "done")
        ticket, created = store.submit("k1", "isorank")
        assert not created and ticket.state == "done"

    def test_illegal_transitions_raise(self, tmp_path):
        store = TicketStore(tmp_path)
        store.submit("k1", "isorank")
        with pytest.raises(TicketError):
            store.transition("k1", "done")  # pending -> done skips leased
        store.transition("k1", "leased")
        store.transition("k1", "done")
        with pytest.raises(TicketError):
            store.transition("k1", "pending")  # terminal is forever
        with pytest.raises(TicketError):
            store.transition("unknown", "leased")
        with pytest.raises(TicketError):
            store.transition("k1", "not-a-state")

    def test_reclaim_edge_requeues(self, tmp_path):
        store = TicketStore(tmp_path)
        store.submit("k1", "isorank")
        store.transition("k1", "leased", attempts=1)
        ticket = store.transition("k1", "pending", attempts=1)
        assert ticket.state == "pending" and ticket.attempts == 1

    def test_two_stores_converge_across_refresh(self, tmp_path):
        a = TicketStore(tmp_path)
        b = TicketStore(tmp_path)
        a.submit("k1", "isorank")
        b.refresh()
        assert b.get("k1") is not None
        # b's view can transition only through its own ticket objects;
        # simulate the server folding a's terminal entry.
        a.transition("k1", "leased")
        a.transition("k1", "failed", error="boom")
        b.refresh()
        assert b.get("k1").state == "failed"
        assert b.get("k1").error == "boom"
        a.close(), b.close()

    def test_torn_tail_keeps_complete_entries(self, tmp_path):
        store = TicketStore(tmp_path)
        store.submit("k1", "isorank")
        store.transition("k1", "leased")
        store.close()
        segment = next(tmp_path.glob("*.jsonl"))
        with open(segment, "ab") as handle:
            handle.write(b'{"key": "k1", "state": "done"')  # no newline
        fresh = TicketStore(tmp_path)
        assert fresh.get("k1").state == "leased"

    def test_replay_materializes_ticket_from_transition_entry(self, tmp_path):
        # A create entry lost to a torn tail must not drop the later,
        # acknowledged transition on replay.
        (tmp_path / "other-1.jsonl").write_text(
            json.dumps({"key": "kX", "state": "done", "time": 5.0,
                        "pid": 1, "host": "other", "seq": 1}) + "\n")
        store = TicketStore(tmp_path)
        assert store.get("kX").state == "done"

    def test_terminal_sticky_whatever_replays_later(self, tmp_path):
        entries = [
            {"key": "k", "state": "pending", "time": 1.0, "seq": 1},
            {"key": "k", "state": "leased", "time": 2.0, "seq": 2},
            {"key": "k", "state": "done", "time": 3.0, "seq": 3},
            {"key": "k", "state": "pending", "time": 4.0, "seq": 4},
        ]
        (tmp_path / "other-1.jsonl").write_text(
            "".join(json.dumps(e) + "\n" for e in entries))
        store = TicketStore(tmp_path)
        assert store.get("k").state == "done"

    def test_counts_zero_filled(self, tmp_path):
        store = TicketStore(tmp_path)
        counts = store.counts()
        assert set(counts) == {"pending", "leased", "done", "failed",
                               "expired", "cancelled"}
        assert all(v == 0 for v in counts.values())


class TestDurableRequestQueue:
    def test_enqueue_round_trips_the_request(self, tmp_path):
        queue = DurableRequestQueue(tmp_path)
        request = request_for(3, params={"alpha": 0.7},
                              deadline_seconds=9.0)
        key, fresh = queue.enqueue(request)
        assert fresh
        loaded = queue.load_request(key)
        assert loaded.algorithm == "isorank"
        assert loaded.params == {"alpha": 0.7}
        assert loaded.deadline_seconds == 9.0
        assert loaded.source.content_digest() == \
            request.source.content_digest()
        assert loaded.key() == key

    def test_backpressure_bounds_new_requests_only(self, tmp_path):
        queue = DurableRequestQueue(tmp_path, max_depth=2)
        queue.enqueue(request_for(0))
        queue.enqueue(request_for(1))
        with pytest.raises(QueueFull) as info:
            queue.enqueue(request_for(2))
        assert info.value.depth == 2 and info.value.max_depth == 2
        # the rejected request left nothing behind
        assert queue.depth() == 2
        # a duplicate of an accepted request is re-accepted at full depth
        _, fresh = queue.enqueue(request_for(0))
        assert not fresh

    def test_done_markers_free_depth(self, tmp_path):
        queue = DurableRequestQueue(tmp_path, max_depth=1)
        key, _ = queue.enqueue(request_for(0))
        queue.mark_done(key)
        assert queue.depth() == 0
        queue.enqueue(request_for(1))  # admitted again

    def test_claim_is_exclusive_until_released(self, tmp_path):
        queue = DurableRequestQueue(tmp_path)
        key, _ = queue.enqueue(request_for(0))
        claim = queue.claim(key)
        assert claim is not None
        assert queue.claim(key) is None
        assert queue.holder(key).pid == os.getpid()
        queue.release(claim)
        assert queue.claim(key) is not None

    def test_reclaim_stale_recovers_dead_holder(self, tmp_path):
        queue = DurableRequestQueue(tmp_path, lease_timeout_seconds=30.0)
        key, _ = queue.enqueue(request_for(0))
        claim = queue.claim(key)
        # rewrite the lease as if its owner had died
        import json as _json
        lease = _json.loads(claim.read_text())
        lease["pid"] = 2 ** 22 + 1234  # beyond pid_max: provably dead
        claim.write_text(_json.dumps(lease))
        reclaimed = queue.reclaim_stale()
        assert reclaimed == [(key, 1, "dead_pid")]
        assert queue.attempts(key) == 1
        assert queue.claim(key) is not None  # claimable again

    def test_missing_payload_is_reported_not_raised_at_scan(self, tmp_path):
        queue = DurableRequestQueue(tmp_path)
        with pytest.raises(ExperimentError):
            queue.load_request("nope")

    def test_pending_keys_oldest_first(self, tmp_path):
        queue = DurableRequestQueue(tmp_path)
        k0, _ = queue.enqueue(request_for(0))
        time.sleep(0.02)
        k1, _ = queue.enqueue(request_for(1))
        assert queue.pending_keys() == [k0, k1]
        queue.mark_done(k0)
        assert queue.pending_keys() == [k1]


class TestServiceLifecycle:
    def test_submit_poll_result_round_trip(self, tmp_path):
        svc = AlignmentService(tmp_path, workers=1, runner=fast_runner)
        ticket = svc.submit_sync(request_for(0))
        assert ticket.state == "pending"
        assert svc.run_until_drained(max_seconds=30) == 1
        assert svc.status_sync(ticket.key).state == "done"
        record = svc.result_sync(ticket.key)
        assert record.measures == {"s3": 1.0}
        svc.close()

    def test_real_runner_matches_serial_run_cell(self, tmp_path):
        pair = make_pair(erdos_renyi_graph(18, 0.3, seed=4),
                         "one-way", 0.1, seed=4)
        svc = AlignmentService(tmp_path, workers=1)
        ticket = svc.submit_sync(AlignmentRequest(
            source=pair.source, target=pair.target, algorithm="isorank",
            seed=4, ground_truth=pair.ground_truth))
        svc.run_until_drained(max_seconds=120)
        record = svc.result_sync(ticket.key)
        reference = run_cell(
            "isorank",
            GraphPair(pair.source, pair.target, pair.ground_truth,
                      noise_type="service", noise_level=0.0),
            "service", 0, assignment="jv", measures=DEFAULT_MEASURES,
            seed=4)
        assert record.measures == reference.measures
        assert record.failed == reference.failed
        svc.close()

    def test_duplicate_submit_returns_same_ticket_any_state(self, tmp_path):
        svc = AlignmentService(tmp_path, workers=1, runner=fast_runner)
        request = request_for(0)
        first = svc.submit_sync(request)
        assert svc.submit_sync(request).key == first.key
        svc.run_until_drained(max_seconds=30)
        after = svc.submit_sync(request)
        assert after.key == first.key and after.state == "done"
        # still exactly one durable request
        assert len(svc.queue.accepted_keys()) == 1
        svc.close()

    def test_backpressure_rejects_with_retry_after(self, tmp_path):
        svc = AlignmentService(tmp_path, max_depth=2, workers=1,
                               runner=fast_runner)
        accepted = [svc.submit_sync(request_for(s)) for s in range(2)]
        with pytest.raises(ServiceUnavailable) as info:
            svc.submit_sync(request_for(2))
        assert info.value.reason == "queue_full"
        assert info.value.retry_after_seconds > 0
        # accepted tickets are never dropped by the rejection
        svc.run_until_drained(max_seconds=30)
        for ticket in accepted:
            assert svc.status_sync(ticket.key).state == "done"
        svc.close()

    def test_draining_rejects_new_accepts_duplicates(self, tmp_path):
        svc = AlignmentService(tmp_path, workers=1, runner=fast_runner)
        ticket = svc.submit_sync(request_for(0))
        svc.request_drain()
        with pytest.raises(ServiceUnavailable) as info:
            svc.submit_sync(request_for(1))
        assert info.value.reason == "draining"
        assert svc.submit_sync(request_for(0)).key == ticket.key
        svc.close()

    def test_cancel_only_pending(self, tmp_path):
        svc = AlignmentService(tmp_path, workers=1, runner=fast_runner)
        ticket = svc.submit_sync(request_for(0))
        cancelled = svc.cancel_sync(ticket.key)
        assert cancelled.state == "cancelled"
        assert svc.queue.depth() == 0  # cancellation frees the backlog
        assert svc.cancel_sync(ticket.key).state == "cancelled"  # idempotent
        with pytest.raises(TicketError):
            svc.result_sync(ticket.key)
        svc.close()

    def test_deadline_expires_queued_ticket(self, tmp_path):
        svc = AlignmentService(tmp_path, workers=1, runner=fast_runner)
        ticket = svc.submit_sync(request_for(0, deadline_seconds=0.001))
        time.sleep(0.02)
        svc.janitor_pass()
        expired = svc.status_sync(ticket.key)
        assert expired.state == "expired"
        assert "deadline" in expired.error
        assert svc.queue.depth() == 0
        svc.close()

    def test_default_deadline_applies(self, tmp_path):
        svc = AlignmentService(tmp_path, workers=1, runner=fast_runner,
                               default_deadline_seconds=123.0)
        ticket = svc.submit_sync(request_for(0))
        assert ticket.deadline_seconds == 123.0
        svc.close()

    def test_failed_computation_is_a_failed_ticket_with_result(self, tmp_path):
        def failing_runner(request, budget):
            record = fast_record(request)
            from dataclasses import replace
            return replace(record, failed=True,
                           error="ValueError: synthetic failure",
                           measures={})
        svc = AlignmentService(tmp_path, workers=1, runner=failing_runner)
        ticket = svc.submit_sync(request_for(0))
        svc.run_until_drained(max_seconds=30)
        final = svc.status_sync(ticket.key)
        assert final.state == "failed"
        assert "ValueError" in final.error
        # the failed record is still the servable result, like sweep cells
        assert svc.result_sync(ticket.key).failed
        svc.close()

    def test_result_recomputed_after_cache_eviction(self, tmp_path):
        calls = {"n": 0}

        def counting_runner(request, budget):
            calls["n"] += 1
            return fast_record(request)
        svc = AlignmentService(tmp_path, workers=1, runner=counting_runner)
        ticket = svc.submit_sync(request_for(0))
        svc.run_until_drained(max_seconds=30)
        assert calls["n"] == 1
        svc.results.prune(max_bytes=0)  # evict everything
        record = svc.result_sync(ticket.key)
        assert record.measures == {"s3": 1.0}
        assert calls["n"] == 2  # transparently recomputed
        assert svc.result_sync(ticket.key).measures == {"s3": 1.0}
        assert calls["n"] == 2  # ... and re-stored
        svc.close()

    def test_health_and_heartbeat_file(self, tmp_path):
        svc = AlignmentService(tmp_path, workers=3, runner=fast_runner)
        svc.submit_sync(request_for(0))
        svc.write_heartbeat()
        health = read_health(tmp_path)
        assert health["status"] == "ok"
        assert health["backlog"] == 1
        assert health["workers"] == 3
        assert health["tickets"]["pending"] == 1
        svc.close()


class TestServiceRecovery:
    def test_restart_resumes_pending_backlog(self, tmp_path):
        svc = AlignmentService(tmp_path, workers=1, runner=fast_runner)
        keys = [svc.submit_sync(request_for(s)).key for s in range(3)]
        svc.close()  # "crash" before serving anything
        svc2 = AlignmentService(tmp_path, workers=1, runner=fast_runner)
        assert svc2.store.counts()["pending"] == 3
        svc2.run_until_drained(max_seconds=30)
        for key in keys:
            assert svc2.status_sync(key).state == "done"
        svc2.close()

    def test_orphan_request_without_ticket_is_adopted(self, tmp_path):
        # Crash window: request payload durable, ticket create lost.
        svc = AlignmentService(tmp_path, workers=1, runner=fast_runner)
        request = request_for(0)
        key, _ = svc.queue.enqueue(request)
        svc.close()
        svc2 = AlignmentService(tmp_path, workers=1, runner=fast_runner)
        adopted = svc2.status_sync(key)
        assert adopted.state == "pending"
        assert adopted.algorithm == "isorank"
        svc2.run_until_drained(max_seconds=30)
        assert svc2.status_sync(key).state == "done"
        svc2.close()

    def test_done_marker_with_lost_transition_heals_to_done(self, tmp_path):
        svc = AlignmentService(tmp_path, workers=1, runner=fast_runner)
        ticket = svc.submit_sync(request_for(0))
        svc.queue.mark_done(ticket.key)  # marker out, transition lost
        svc.close()
        svc2 = AlignmentService(tmp_path, workers=1, runner=fast_runner)
        assert svc2.status_sync(ticket.key).state == "done"
        svc2.close()

    def test_leased_without_lease_file_requeues(self, tmp_path):
        svc = AlignmentService(tmp_path, workers=1, runner=fast_runner)
        ticket = svc.submit_sync(request_for(0))
        svc.store.transition(ticket.key, "leased", attempts=1)
        svc.close()  # crashed between lease release and terminal journal
        svc2 = AlignmentService(tmp_path, workers=1, runner=fast_runner)
        assert svc2.status_sync(ticket.key).state == "pending"
        svc2.run_until_drained(max_seconds=30)
        assert svc2.status_sync(ticket.key).state == "done"
        svc2.close()

    def test_stale_lease_from_dead_pid_is_reclaimed_live(self, tmp_path):
        svc = AlignmentService(tmp_path, workers=1, runner=fast_runner,
                               lease_timeout_seconds=30.0)
        ticket = svc.submit_sync(request_for(0))
        svc.store.transition(ticket.key, "leased", attempts=1)
        claim = try_acquire_lease(svc.queue.lease_dir, ticket.key, attempt=1)
        assert claim is not None
        lease = json.loads(claim.read_text())
        lease["pid"] = 2 ** 22 + 999
        claim.write_text(json.dumps(lease))
        svc.janitor_pass()
        assert svc.status_sync(ticket.key).state == "pending"
        events = load_service_events(tmp_path)
        assert any(e["kind"] == "lease_reclaimed" for e in events)
        svc.close()

    def test_events_survive_restart(self, tmp_path):
        svc = AlignmentService(tmp_path, workers=1, runner=fast_runner)
        svc._record_event("probe", detail=1)
        svc.close()
        svc2 = AlignmentService(tmp_path, workers=1, runner=fast_runner)
        svc2._record_event("probe", detail=2)
        svc2.close()
        probes = [e for e in load_service_events(tmp_path)
                  if e["kind"] == "probe"]
        assert [e["detail"] for e in probes] == [1, 2]


class TestIdempotencyUnderRaces:
    """Hypothesis: concurrent duplicate submissions of the same pair
    converge to one ticket and one computation."""

    @given(n_threads=st.integers(2, 5), seed=st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_concurrent_duplicate_submissions_converge(self, tmp_path_factory,
                                                       n_threads, seed):
        tmp_path = tmp_path_factory.mktemp("race")
        executions = []
        lock = threading.Lock()

        def counting_runner(request, budget):
            with lock:
                executions.append(request.key())
            return fast_record(request)

        svc = AlignmentService(tmp_path, workers=1, runner=counting_runner)
        request = request_for(seed)
        barrier = threading.Barrier(n_threads)
        tickets, errors = [], []

        def submit():
            try:
                barrier.wait(timeout=10)
                tickets.append(svc.submit_sync(request))
            except Exception as exc:  # noqa: BLE001 — collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=submit)
                   for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors
        assert len(tickets) == n_threads
        assert len({t.key for t in tickets}) == 1  # one ticket
        assert len(svc.queue.accepted_keys()) == 1  # one durable request
        svc.run_until_drained(max_seconds=30)
        assert executions == [request.key()]  # exactly one computation
        assert svc.status_sync(request.key()).state == "done"
        svc.close()


class TestServeAsync:
    def test_serve_stop_when_idle_drains_batch(self, tmp_path):
        import asyncio

        async def scenario():
            svc = AlignmentService(tmp_path, workers=2, runner=fast_runner)
            tickets = [await svc.submit(request_for(s)) for s in range(4)]
            summary = await asyncio.wait_for(
                svc.serve(stop_when_idle=True), 60)
            assert summary["tickets"]["done"] == 4
            for ticket in tickets:
                record = await svc.result(ticket.key)
                assert record.measures == {"s3": 1.0}
            assert svc.draining
            svc.close()

        asyncio.run(scenario())
