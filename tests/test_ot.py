"""Tests for the optimal-transport substrate (Sinkhorn, GW, Procrustes)."""

import numpy as np
import pytest

from repro.exceptions import AlgorithmError, ConvergenceError
from repro.ot import (
    gromov_wasserstein,
    gw_discrepancy,
    gw_gradient,
    orthogonal_procrustes,
    sinkhorn,
)
from repro.ot.gromov import gw_barycenter_costs


class TestSinkhorn:
    def test_marginals_satisfied(self):
        rng = np.random.default_rng(0)
        cost = rng.random((6, 8))
        mu = rng.random(6); mu /= mu.sum()
        nu = rng.random(8); nu /= nu.sum()
        plan = sinkhorn(cost, mu, nu, epsilon=0.05)
        assert np.allclose(plan.sum(axis=1), mu, atol=1e-6)
        assert np.allclose(plan.sum(axis=0), nu, atol=1e-4)

    def test_uniform_default_marginals(self):
        plan = sinkhorn(np.zeros((4, 4)), epsilon=0.1)
        assert np.allclose(plan, 0.0625)

    def test_small_epsilon_sharpens_toward_permutation(self):
        cost = 1.0 - np.eye(5)
        plan = sinkhorn(cost, epsilon=0.005, max_iter=2000)
        assert np.allclose(np.argmax(plan, axis=1), np.arange(5))
        assert plan.max() > 0.19  # close to the 1/5 permutation mass

    def test_invalid_epsilon(self):
        with pytest.raises(AlgorithmError):
            sinkhorn(np.zeros((2, 2)), epsilon=0.0)

    def test_bad_marginal_shape(self):
        with pytest.raises(AlgorithmError):
            sinkhorn(np.zeros((2, 2)), mu=np.ones(3))

    def test_negative_marginal_rejected(self):
        with pytest.raises(AlgorithmError):
            sinkhorn(np.zeros((2, 2)), mu=np.array([-1.0, 2.0]))

    def test_raise_on_failure(self):
        rng = np.random.default_rng(1)
        cost = rng.random((10, 10)) * 100
        with pytest.raises(ConvergenceError):
            sinkhorn(cost, epsilon=0.001, max_iter=1,
                     raise_on_failure=True)


class TestGromovWasserstein:
    def test_identity_cost_recovers_identity(self):
        rng = np.random.default_rng(2)
        c = rng.random((8, 8))
        c = (c + c.T) / 2
        plan = gromov_wasserstein(c, c, beta=0.01, outer_iter=50)
        assert np.allclose(np.argmax(plan, axis=1), np.arange(8))

    def test_permuted_cost_recovered(self):
        rng = np.random.default_rng(3)
        c1 = rng.random((10, 10)); c1 = (c1 + c1.T) / 2
        perm = rng.permutation(10)
        c2 = c1[np.ix_(perm, perm)]
        # plan should map i -> position of i in c2, i.e. argsort(perm)?
        plan = gromov_wasserstein(c1, c2, beta=0.01, outer_iter=60)
        mapping = np.argmax(plan, axis=1)
        inverse = np.argsort(perm)
        assert np.mean(mapping == inverse) > 0.8

    def test_discrepancy_zero_for_perfect_coupling(self):
        c = np.array([[0.0, 1.0], [1.0, 0.0]])
        plan = np.eye(2) / 2.0
        assert gw_discrepancy(c, c, plan) == pytest.approx(0.0, abs=1e-12)

    def test_gradient_shape(self):
        c1 = np.zeros((3, 3)); c2 = np.zeros((5, 5))
        plan = np.full((3, 5), 1 / 15)
        grad = gw_gradient(c1, c2, plan, np.full(3, 1 / 3), np.full(5, 1 / 5))
        assert grad.shape == (3, 5)

    def test_rectangular(self):
        rng = np.random.default_rng(4)
        c1 = rng.random((6, 6)); c1 = (c1 + c1.T) / 2
        c2 = rng.random((9, 9)); c2 = (c2 + c2.T) / 2
        plan = gromov_wasserstein(c1, c2, beta=0.05, outer_iter=10)
        assert plan.shape == (6, 9)
        assert plan.sum() == pytest.approx(1.0, abs=1e-6)

    def test_nonsquare_cost_rejected(self):
        with pytest.raises(AlgorithmError):
            gromov_wasserstein(np.zeros((2, 3)), np.zeros((2, 2)))

    def test_fused_term_steers_plan(self):
        # Identical structure, but the extra cost forbids the identity.
        c = np.zeros((3, 3))
        extra = 1.0 - np.roll(np.eye(3), 1, axis=1)  # prefer i -> i+1
        plan = gromov_wasserstein(c, c, beta=0.02, outer_iter=20,
                                  extra_cost=extra, alpha=1.0)
        assert np.allclose(np.argmax(plan, axis=1), (np.arange(3) + 1) % 3)


class TestBarycenter:
    def test_partitions_two_blocks(self):
        # Two disjoint cliques: barycenter couplings should split them.
        block = np.ones((4, 4)) - np.eye(4)
        c = np.block([[block, np.zeros((4, 4))],
                      [np.zeros((4, 4)), block]])
        _bary, (plan,) = gw_barycenter_costs([c], size=2, beta=0.05,
                                             seed=np.random.default_rng(0))
        labels = np.argmax(plan, axis=1)
        assert len(set(labels[:4].tolist())) == 1
        assert len(set(labels[4:].tolist())) == 1
        assert labels[0] != labels[4]

    def test_empty_list_rejected(self):
        with pytest.raises(AlgorithmError):
            gw_barycenter_costs([])


class TestProcrustes:
    def test_recovers_rotation(self):
        rng = np.random.default_rng(5)
        x = rng.random((20, 4))
        q_true, _ = np.linalg.qr(rng.random((4, 4)))
        y = x @ q_true
        q = orthogonal_procrustes(x, y)
        assert np.allclose(q, q_true, atol=1e-8)

    def test_result_orthogonal(self):
        rng = np.random.default_rng(6)
        q = orthogonal_procrustes(rng.random((10, 3)), rng.random((10, 3)))
        assert np.allclose(q.T @ q, np.eye(3), atol=1e-10)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AlgorithmError):
            orthogonal_procrustes(np.zeros((3, 2)), np.zeros((4, 2)))


class TestSinkhornInputValidation:
    def test_nan_cost_rejected(self):
        cost = np.ones((3, 3))
        cost[1, 1] = np.nan
        with pytest.raises(AlgorithmError, match="non-finite"):
            sinkhorn(cost)

    def test_inf_cost_rejected(self):
        cost = np.ones((3, 3))
        cost[0, 2] = np.inf
        with pytest.raises(AlgorithmError, match="non-finite"):
            sinkhorn(cost)

    def test_nonconvergence_records_diagnostic(self):
        from repro.diagnostics import capture_diagnostics

        rng = np.random.default_rng(3)
        cost = rng.random((8, 8))
        with capture_diagnostics() as events:
            plan = sinkhorn(cost, epsilon=1e-4, max_iter=1, tol=1e-15)
        assert np.all(np.isfinite(plan))
        assert any(e.kind == "nonconvergence"
                   and e.fallback_used == "current_plan" for e in events)

    def test_convergence_records_nothing(self):
        from repro.diagnostics import capture_diagnostics

        rng = np.random.default_rng(3)
        cost = rng.random((4, 4))
        with capture_diagnostics() as events:
            sinkhorn(cost, epsilon=1.0, max_iter=2000)
        assert events == []
