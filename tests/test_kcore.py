"""Tests for k-core decomposition and path utilities."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    powerlaw_cluster_graph,
    star_graph,
)
from repro.graphs.kcore import (
    all_pairs_hop_distance,
    average_shortest_path_length,
    core_numbers,
    k_core,
)


def _to_nx(graph):
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_nodes))
    g.add_edges_from(map(tuple, graph.edges()))
    return g


class TestCoreNumbers:
    def test_complete_graph(self):
        assert np.all(core_numbers(complete_graph(6)) == 5)

    def test_star(self):
        cores = core_numbers(star_graph(8))
        assert np.all(cores == 1)

    def test_path(self):
        assert np.all(core_numbers(path_graph(5)) == 1)

    def test_cycle(self):
        assert np.all(core_numbers(cycle_graph(7)) == 2)

    def test_isolated_nodes_zero(self):
        g = Graph(4, [(0, 1)])
        cores = core_numbers(g)
        assert cores[2] == 0 and cores[3] == 0

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_networkx(self, seed):
        g = erdos_renyi_graph(60, 0.12, seed=seed)
        ours = core_numbers(g)
        theirs = nx.core_number(_to_nx(g))
        for node in range(60):
            assert ours[node] == theirs[node], node

    def test_powerlaw_matches_networkx(self):
        g = powerlaw_cluster_graph(120, 4, 0.5, seed=5)
        ours = core_numbers(g)
        theirs = nx.core_number(_to_nx(g))
        assert all(ours[v] == theirs[v] for v in range(120))


class TestKCore:
    def test_subgraph_min_degree(self):
        g = powerlaw_cluster_graph(100, 3, 0.3, seed=6)
        sub, nodes = k_core(g, 3)
        if sub.num_nodes:
            assert sub.degrees.min() >= 3

    def test_k_zero_returns_everything(self):
        g = Graph(5, [(0, 1)])
        sub, nodes = k_core(g, 0)
        assert sub.num_nodes == 5

    def test_negative_k_rejected(self):
        with pytest.raises(GraphError):
            k_core(cycle_graph(4), -1)

    def test_matches_networkx_node_set(self):
        g = erdos_renyi_graph(80, 0.1, seed=7)
        _sub, nodes = k_core(g, 3)
        theirs = set(nx.k_core(_to_nx(g), 3).nodes)
        assert set(nodes.tolist()) == theirs


class TestPaths:
    def test_hop_matrix_path_graph(self):
        dist = all_pairs_hop_distance(path_graph(4))
        assert dist[0].tolist() == [0, 1, 2, 3]
        assert np.array_equal(dist, dist.T)

    def test_unreachable_marked(self):
        g = Graph(4, [(0, 1), (2, 3)])
        dist = all_pairs_hop_distance(g)
        assert dist[0, 2] == -1

    def test_average_length_matches_networkx(self):
        g = erdos_renyi_graph(50, 0.15, seed=8)
        from repro.graphs import is_connected
        if is_connected(g):
            ours = average_shortest_path_length(g)
            theirs = nx.average_shortest_path_length(_to_nx(g))
            assert ours == pytest.approx(theirs)

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            average_shortest_path_length(Graph(1))
