"""Tests for the noise models and GraphPair construction (paper §5.1)."""

import numpy as np
import pytest

from repro.exceptions import NoiseError
from repro.graphs import Graph, cycle_graph, erdos_renyi_graph, is_connected, path_graph
from repro.noise import (
    GraphPair,
    add_random_edges,
    make_noisy_copies,
    make_pair,
    remove_random_edges,
)


class TestRemoveRandomEdges:
    def test_count_removed(self, karate_like):
        h = remove_random_edges(karate_like, 5, seed=0)
        assert h.num_edges == karate_like.num_edges - 5
        assert h.edge_set() <= karate_like.edge_set()

    def test_zero_is_identity(self, karate_like):
        assert remove_random_edges(karate_like, 0) == karate_like

    def test_too_many_rejected(self):
        with pytest.raises(NoiseError):
            remove_random_edges(path_graph(3), 5)

    def test_negative_rejected(self):
        with pytest.raises(NoiseError):
            remove_random_edges(path_graph(3), -1)

    def test_preserve_connectivity(self):
        g = cycle_graph(10)
        # A cycle has no bridges until one edge is gone; removing 1 keeps it
        # connected, removing 2 with preservation is impossible.
        h = remove_random_edges(g, 1, seed=0, preserve_connectivity=True)
        assert is_connected(h)
        with pytest.raises(NoiseError):
            remove_random_edges(g, 2, seed=0, preserve_connectivity=True)

    def test_preserve_connectivity_dense(self, karate_like):
        count = karate_like.num_edges // 5
        h = remove_random_edges(karate_like, count, seed=1,
                                preserve_connectivity=True)
        assert is_connected(h)
        assert h.num_edges == karate_like.num_edges - count


class TestAddRandomEdges:
    def test_count_added(self, karate_like):
        h = add_random_edges(karate_like, 7, seed=0)
        assert h.num_edges == karate_like.num_edges + 7
        assert karate_like.edge_set() <= h.edge_set()

    def test_zero_is_identity(self, karate_like):
        assert add_random_edges(karate_like, 0) == karate_like

    def test_capacity_exceeded_rejected(self):
        g = path_graph(3)  # capacity 3 - 2 = 1 free slot
        with pytest.raises(NoiseError):
            add_random_edges(g, 2)

    def test_fill_to_complete(self):
        g = path_graph(4)
        h = add_random_edges(g, 3, seed=0)  # 6 total = complete K4
        assert h.num_edges == 6

    def test_no_self_loops_or_duplicates(self, karate_like):
        h = add_random_edges(karate_like, 20, seed=3)
        edges = h.edges()
        assert np.all(edges[:, 0] != edges[:, 1])
        assert len(h.edge_set()) == h.num_edges


class TestMakePair:
    def test_one_way(self, pl_graph):
        pair = make_pair(pl_graph, "one-way", 0.05, seed=0)
        removed = int(round(0.05 * pl_graph.num_edges))
        assert pair.source == pl_graph
        assert pair.target.num_edges == pl_graph.num_edges - removed

    def test_multimodal_preserves_edge_count(self, pl_graph):
        pair = make_pair(pl_graph, "multimodal", 0.05, seed=0)
        assert pair.target.num_edges == pl_graph.num_edges

    def test_two_way_perturbs_both(self, pl_graph):
        pair = make_pair(pl_graph, "two-way", 0.05, seed=0)
        removed = int(round(0.05 * pl_graph.num_edges))
        assert pair.source.num_edges == pl_graph.num_edges - removed
        assert pair.target.num_edges == pl_graph.num_edges - removed
        assert pair.source != pl_graph

    def test_ground_truth_is_isomorphism_at_zero_noise(self, pl_graph):
        pair = make_pair(pl_graph, "one-way", 0.0, seed=0)
        truth = pair.ground_truth
        for u, v in pair.source.edges()[:20]:
            assert pair.target.has_edge(int(truth[u]), int(truth[v]))

    def test_no_permutation_option(self, pl_graph):
        pair = make_pair(pl_graph, "one-way", 0.02, seed=0, permute=False)
        assert np.array_equal(pair.ground_truth, np.arange(pl_graph.num_nodes))

    def test_unknown_noise_type_rejected(self, pl_graph):
        with pytest.raises(NoiseError):
            make_pair(pl_graph, "bogus", 0.01)

    def test_invalid_level_rejected(self, pl_graph):
        with pytest.raises(NoiseError):
            make_pair(pl_graph, "one-way", 1.0)
        with pytest.raises(NoiseError):
            make_pair(pl_graph, "one-way", -0.1)

    def test_provenance_recorded(self, pl_graph):
        pair = make_pair(pl_graph, "multimodal", 0.03, seed=0)
        assert pair.noise_type == "multimodal"
        assert pair.noise_level == pytest.approx(0.03)

    def test_reproducible(self, pl_graph):
        a = make_pair(pl_graph, "one-way", 0.02, seed=5)
        b = make_pair(pl_graph, "one-way", 0.02, seed=5)
        assert a.target == b.target
        assert np.array_equal(a.ground_truth, b.ground_truth)


class TestGraphPair:
    def test_truth_shape_validated(self):
        g = path_graph(3)
        with pytest.raises(NoiseError):
            GraphPair(g, g, np.array([0, 1]))

    def test_truth_range_validated(self):
        g = path_graph(3)
        with pytest.raises(NoiseError):
            GraphPair(g, g, np.array([0, 1, 5]))

    def test_inverse_truth(self, noisy_pair):
        inv = noisy_pair.inverse_truth
        truth = noisy_pair.ground_truth
        assert np.array_equal(inv[truth], np.arange(truth.size))

    def test_swap(self, noisy_pair):
        swapped = noisy_pair.swap()
        assert swapped.source == noisy_pair.target
        assert swapped.target == noisy_pair.source
        # Swapping twice gives back the original truth.
        assert np.array_equal(swapped.swap().ground_truth,
                              noisy_pair.ground_truth)


class TestNoisyCopies:
    def test_copies_independent(self, pl_graph):
        copies = make_noisy_copies(pl_graph, "one-way", 0.05, 3, seed=0)
        assert len(copies) == 3
        targets = {c.target for c in copies}
        assert len(targets) == 3
