"""Tests for the random-graph generators, cross-validated against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    barabasi_albert_graph,
    complete_graph,
    configuration_model_graph,
    cycle_graph,
    erdos_renyi_graph,
    newman_watts_graph,
    path_graph,
    powerlaw_cluster_graph,
    random_regular_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.graphs.generators import as_rng, normal_degree_sequence


def _clustering(graph):
    nxg = nx.Graph()
    nxg.add_nodes_from(range(graph.num_nodes))
    nxg.add_edges_from(map(tuple, graph.edges()))
    return nx.average_clustering(nxg)


class TestErdosRenyi:
    def test_edge_count_matches_expectation(self):
        n, p = 400, 0.05
        counts = [erdos_renyi_graph(n, p, seed=s).num_edges for s in range(5)]
        expected = p * n * (n - 1) / 2
        assert abs(np.mean(counts) - expected) < 0.1 * expected

    def test_p_zero_and_one(self):
        assert erdos_renyi_graph(10, 0.0, seed=0).num_edges == 0
        assert erdos_renyi_graph(10, 1.0, seed=0).num_edges == 45

    def test_invalid_p(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(10, 1.5)

    def test_reproducible(self):
        assert erdos_renyi_graph(50, 0.1, seed=3) == erdos_renyi_graph(50, 0.1, seed=3)

    def test_different_seeds_differ(self):
        assert erdos_renyi_graph(50, 0.1, seed=3) != erdos_renyi_graph(50, 0.1, seed=4)

    def test_degree_distribution_binomial(self):
        g = erdos_renyi_graph(1000, 0.01, seed=0)
        mean = g.degrees.mean()
        assert abs(mean - 9.99) < 1.5
        # ER degree variance is close to its mean.
        assert abs(g.degrees.var() - mean) < 0.4 * mean


class TestBarabasiAlbert:
    def test_edge_count(self):
        n, m = 200, 5
        g = barabasi_albert_graph(n, m, seed=0)
        assert g.num_edges == (n - m) * m

    def test_scale_free_tail(self):
        g = barabasi_albert_graph(2000, 3, seed=0)
        # Scale-free: the max degree dwarfs the mean.
        assert g.degrees.max() > 8 * g.degrees.mean()

    def test_connected(self):
        from repro.graphs import is_connected
        assert is_connected(barabasi_albert_graph(300, 2, seed=1))

    def test_invalid_m(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(5, 0)
        with pytest.raises(GraphError):
            barabasi_albert_graph(5, 5)


class TestWattsStrogatz:
    def test_degree_preserved_in_expectation(self):
        g = watts_strogatz_graph(300, 10, 0.3, seed=0)
        assert abs(g.average_degree - 10) < 0.5

    def test_p_zero_is_ring_lattice(self):
        g = watts_strogatz_graph(20, 4, 0.0, seed=0)
        assert np.all(g.degrees == 4)
        assert g.has_edge(0, 1) and g.has_edge(0, 2)

    def test_high_clustering_at_low_p(self):
        low = _clustering(watts_strogatz_graph(300, 10, 0.05, seed=0))
        high = _clustering(watts_strogatz_graph(300, 10, 0.9, seed=0))
        assert low > high

    def test_invalid_k(self):
        with pytest.raises(GraphError):
            watts_strogatz_graph(10, 10, 0.1)


class TestNewmanWatts:
    def test_edges_only_added(self):
        base = watts_strogatz_graph(100, 6, 0.0, seed=0)
        nw = newman_watts_graph(100, 6, 0.5, seed=0)
        # Every lattice edge must survive in the NW graph.
        assert base.edge_set() <= nw.edge_set()

    def test_minimum_degree(self):
        g = newman_watts_graph(200, 6, 0.5, seed=1)
        assert g.degrees.min() >= 6

    def test_p_zero_is_lattice(self):
        g = newman_watts_graph(50, 4, 0.0, seed=0)
        assert g.num_edges == 100


class TestPowerlawCluster:
    def test_edge_count_close_to_ba(self):
        n, m = 300, 4
        g = powerlaw_cluster_graph(n, m, 0.5, seed=0)
        assert abs(g.num_edges - (n - m) * m) <= n  # triangle steps may skip

    def test_more_triangles_than_ba(self):
        pl = powerlaw_cluster_graph(500, 4, 0.9, seed=0)
        ba = barabasi_albert_graph(500, 4, seed=0)
        assert _clustering(pl) > 2 * _clustering(ba)

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            powerlaw_cluster_graph(10, 0, 0.5)
        with pytest.raises(GraphError):
            powerlaw_cluster_graph(10, 2, 1.5)


class TestConfigurationModel:
    def test_degrees_approximated(self):
        deg = np.full(500, 10)
        g = configuration_model_graph(deg, seed=0)
        assert abs(g.average_degree - 10) < 0.5

    def test_odd_total_degree_fixed_up(self):
        g = configuration_model_graph([3, 2, 2], seed=0)
        assert g.num_nodes == 3  # does not crash; stub count was made even

    def test_negative_degree_rejected(self):
        with pytest.raises(GraphError):
            configuration_model_graph([-1, 3])

    def test_normal_degree_sequence(self):
        seq = normal_degree_sequence(1000, 20, seed=0)
        assert abs(seq.mean() - 20) < 1.0
        assert seq.min() >= 1
        assert seq.max() <= 999


class TestRandomRegular:
    def test_regularity(self):
        g = random_regular_graph(50, 4, seed=0)
        assert np.all(g.degrees == 4)

    def test_odd_product_rejected(self):
        with pytest.raises(GraphError):
            random_regular_graph(5, 3)

    def test_d_too_large_rejected(self):
        with pytest.raises(GraphError):
            random_regular_graph(4, 4)


class TestDeterministicGraphs:
    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 10
        assert np.all(g.degrees == 4)

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.num_edges == 5
        assert np.all(g.degrees == 2)

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.degrees.tolist() == [1, 2, 2, 2, 1]

    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 5
        assert g.num_edges == 5


class TestRngHandling:
    def test_as_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_as_rng_from_int(self):
        a = as_rng(42).random()
        b = as_rng(42).random()
        assert a == b

    def test_shared_generator_advances(self):
        gen = np.random.default_rng(0)
        g1 = erdos_renyi_graph(30, 0.2, seed=gen)
        g2 = erdos_renyi_graph(30, 0.2, seed=gen)
        assert g1 != g2
