"""Tests for the matrix views (Laplacian, normalizations, heat kernel)."""

import numpy as np
import pytest
from scipy.sparse import csgraph

from repro.graphs import (
    Graph,
    adjacency_matrix,
    cycle_graph,
    degree_matrix,
    erdos_renyi_graph,
    heat_kernel,
    normalized_adjacency,
    normalized_laplacian,
    row_stochastic,
)
from repro.graphs.matrices import column_stochastic, heat_kernel_diagonal


class TestBasicMatrices:
    def test_adjacency(self, triangle):
        adj = adjacency_matrix(triangle, dense=True)
        assert adj.sum() == 6
        assert np.array_equal(adj, adj.T)

    def test_degree_matrix(self, triangle):
        deg = degree_matrix(triangle, dense=True)
        assert np.array_equal(np.diag(deg), [2, 2, 2])

    def test_row_stochastic_rows_sum_to_one(self, karate_like):
        mat = row_stochastic(karate_like, dense=True)
        sums = mat.sum(axis=1)
        nonzero = karate_like.degrees > 0
        assert np.allclose(sums[nonzero], 1.0)

    def test_column_stochastic_cols_sum_to_one(self, karate_like):
        mat = column_stochastic(karate_like, dense=True)
        sums = mat.sum(axis=0)
        nonzero = karate_like.degrees > 0
        assert np.allclose(sums[nonzero], 1.0)

    def test_isolated_node_rows_zero(self):
        g = Graph(3, [(0, 1)])
        assert row_stochastic(g, dense=True)[2].sum() == 0.0


class TestNormalizedLaplacian:
    def test_matches_scipy(self, karate_like):
        ours = normalized_laplacian(karate_like, dense=True)
        theirs = csgraph.laplacian(
            karate_like.adjacency(dense=True), normed=True
        )
        assert np.allclose(ours, theirs)

    def test_eigenvalue_range(self, karate_like):
        lap = normalized_laplacian(karate_like, dense=True)
        vals = np.linalg.eigvalsh(lap)
        assert vals.min() > -1e-10
        assert vals.max() < 2.0 + 1e-10

    def test_zero_eigenvalue_per_component(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        lap = normalized_laplacian(g, dense=True)
        vals = np.linalg.eigvalsh(lap)
        assert np.sum(np.abs(vals) < 1e-10) == 2

    def test_normalized_adjacency_relation(self, karate_like):
        lap = normalized_laplacian(karate_like, dense=True)
        norm_adj = normalized_adjacency(karate_like, dense=True)
        ident = np.diag((karate_like.degrees > 0).astype(float))
        assert np.allclose(lap, ident - norm_adj)


class TestHeatKernel:
    def test_t_zero_is_projection(self, small_cycle):
        lap = normalized_laplacian(small_cycle, dense=True)
        vals, vecs = np.linalg.eigh(lap)
        kernel = heat_kernel(vals, vecs, t=0.0)
        assert np.allclose(kernel, vecs @ vecs.T)

    def test_matches_expm(self, triangle):
        from scipy.linalg import expm
        lap = normalized_laplacian(triangle, dense=True)
        vals, vecs = np.linalg.eigh(lap)
        t = 0.7
        assert np.allclose(heat_kernel(vals, vecs, t), expm(-t * lap))

    def test_diagonal_helper(self, small_cycle):
        lap = normalized_laplacian(small_cycle, dense=True)
        vals, vecs = np.linalg.eigh(lap)
        t = 1.3
        full = heat_kernel(vals, vecs, t)
        assert np.allclose(heat_kernel_diagonal(vals, vecs, t), np.diag(full))

    def test_trace_decreases_with_t(self, karate_like):
        lap = normalized_laplacian(karate_like, dense=True)
        vals, vecs = np.linalg.eigh(lap)
        traces = [np.trace(heat_kernel(vals, vecs, t)) for t in (0.1, 1.0, 10.0)]
        assert traces[0] > traces[1] > traces[2]
