"""End-to-end test of the ``python -m repro`` entry point."""

import subprocess
import sys


class TestMainModule:
    def test_algorithms_subcommand(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "algorithms"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0
        assert "isorank" in proc.stdout
        assert "grasp" in proc.stdout

    def test_no_command_exits_nonzero(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode != 0
        assert "command" in proc.stderr
