"""Degenerate-input robustness for every algorithm.

Each algorithm must survive (not necessarily solve well) tiny graphs,
highly symmetric graphs, isolated nodes, and edgeless graphs — the inputs
that break unguarded linear algebra (empty eigenbases, zero degrees,
rank-0 similarity).
"""

import numpy as np
import pytest

from repro.algorithms import get_algorithm, list_algorithms
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.measures import accuracy
from repro.noise import make_pair

CORNER_GRAPHS = {
    "p2": path_graph(2),
    "star": star_graph(10),
    "complete": complete_graph(6),
    "cycle": cycle_graph(8),
    "isolated-nodes": Graph(6, [(0, 1), (1, 2), (2, 0)]),
    "edgeless": Graph(4),
}


@pytest.mark.parametrize("name", sorted(list_algorithms()))
@pytest.mark.parametrize("graph_name", sorted(CORNER_GRAPHS))
class TestCornerInputs:
    def test_self_alignment_runs(self, name, graph_name):
        graph = CORNER_GRAPHS[graph_name]
        result = get_algorithm(name).align(graph, graph, seed=0)
        assert result.mapping.shape == (graph.num_nodes,)
        assert np.all(result.mapping < graph.num_nodes)


@pytest.mark.parametrize("name", sorted(list_algorithms()))
class TestSymmetryLimits:
    def test_star_center_identified(self, name):
        """Even on a fully symmetric star, the unique center must map to
        the center (leaves are interchangeable — any leaf image is fine)."""
        graph = star_graph(12)
        pair = make_pair(graph, "one-way", 0.0, seed=5)
        result = get_algorithm(name).align(pair.source, pair.target, seed=0)
        center_image = result.mapping[0]
        true_center = pair.ground_truth[0]
        assert center_image == true_center, name

    def test_complete_graph_any_permutation_perfect(self, name):
        """On K_n every bijection is a perfect alignment: EC must be 1."""
        from repro.measures import edge_correctness
        graph = complete_graph(7)
        result = get_algorithm(name).align(graph, graph, seed=0)
        mapping = result.mapping
        if np.all(mapping >= 0):
            assert edge_correctness(graph, graph, mapping) == 1.0
