"""Tests for the parallel cell-level sweep executor.

The contract under test: ``workers=N`` is an *execution* knob, never a
*semantics* knob.  A parallel run of the same :class:`ExperimentConfig`
produces the same set of :class:`RunRecord`\\ s as a serial run (modulo
wall-clock timing fields), writes the same journal keys, honors budgets
and retries per cell, and a SIGKILLed parallel sweep resumes from its
journal without re-running journaled cells — in either serial or
parallel mode, since the journal format is identical.

``REPRO_TEST_WORKERS`` overrides the worker count (CI exercises the pool
path with 2); the determinism test always compares against ``workers=4``
per the acceptance criteria.  ``REPRO_TEST_CACHE=1`` flips the shared
sweep configuration to ``cache=True`` (the CI cache job), so every
contract in this file — serial equivalence, trace identity, journal
interchange, kill/resume — is also exercised with the artifact cache on.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.graphs import powerlaw_cluster_graph
from repro.harness import (
    CellBudget,
    ExperimentConfig,
    RetryPolicy,
    RunJournal,
    run_experiment,
)
from repro.observability import trace_structure

ROOT = Path(__file__).resolve().parent.parent

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))
CACHE = bool(int(os.environ.get("REPRO_TEST_CACHE", "0")))

GRAPH = powerlaw_cluster_graph(40, 3, 0.3, seed=5)

CONFIG = dict(
    name="par", algorithms=["isorank", "nsd"],
    noise_levels=(0.0, 0.02), repetitions=2, seed=7, cache=CACHE,
)


def canonical(table):
    """Order-insensitive, timing-insensitive view of a result table.

    Timing and peak-memory fields legitimately differ between runs of
    the same cell; everything else — including the measure values, which
    are bit-identical for equal seeds — must match.
    """
    return sorted(
        (r.algorithm, r.dataset, r.noise_type, round(r.noise_level, 6),
         r.repetition, r.assignment, tuple(sorted(r.measures.items())),
         r.failed, r.attempts)
        for r in table.records
    )


class TestParallelDeterminism:
    def test_workers4_matches_serial(self):
        serial = run_experiment(ExperimentConfig(**CONFIG), {"pl": GRAPH})
        parallel = run_experiment(
            ExperimentConfig(workers=4, **CONFIG), {"pl": GRAPH})
        assert len(parallel) == len(serial) == 8
        assert canonical(parallel) == canonical(serial)

    def test_parallel_run_is_repeatable(self):
        first = run_experiment(
            ExperimentConfig(workers=WORKERS, **CONFIG), {"pl": GRAPH})
        second = run_experiment(
            ExperimentConfig(workers=WORKERS, **CONFIG), {"pl": GRAPH})
        assert canonical(first) == canonical(second)

    def test_more_workers_than_instances(self):
        config = ExperimentConfig(
            name="tiny", algorithms=["isorank"], noise_levels=(0.0,),
            repetitions=1, seed=3, workers=8,
        )
        table = run_experiment(config, {"pl": GRAPH})
        assert len(table) == 1 and not table.records[0].failed


class TestParallelTraceIdentity:
    """Tracing is part of the workers=N-is-only-an-execution-knob
    contract: the per-cell span trees and counters a parallel sweep
    collects must be structurally identical to a serial sweep's."""

    @staticmethod
    def _traces_by_cell(table):
        return {
            (r.algorithm, r.dataset, r.noise_type, round(r.noise_level, 6),
             r.repetition): trace_structure(r.trace)
            for r in table.records
        }

    def test_workers4_traces_match_serial(self):
        serial = run_experiment(
            ExperimentConfig(trace=True, **CONFIG), {"pl": GRAPH})
        parallel = run_experiment(
            ExperimentConfig(trace=True, workers=4, **CONFIG),
            {"pl": GRAPH})
        assert all(r.trace is not None for r in serial.records)
        assert all(r.trace is not None for r in parallel.records)
        serial_traces = self._traces_by_cell(serial)
        parallel_traces = self._traces_by_cell(parallel)
        assert serial_traces == parallel_traces
        assert all(structure for structure in serial_traces.values())

    def test_untraced_parallel_records_have_no_trace(self):
        table = run_experiment(
            ExperimentConfig(workers=WORKERS, **CONFIG), {"pl": GRAPH})
        assert all(r.trace is None for r in table.records)


class TestParallelJournal:
    def test_parallel_writes_same_journal_keys_as_serial(self, tmp_path):
        serial_path = tmp_path / "serial.jsonl"
        parallel_path = tmp_path / "parallel.jsonl"
        run_experiment(ExperimentConfig(**CONFIG), {"pl": GRAPH},
                       journal=str(serial_path))
        run_experiment(ExperimentConfig(workers=WORKERS, **CONFIG),
                       {"pl": GRAPH}, journal=str(parallel_path))
        assert (sorted(RunJournal(serial_path).keys)
                == sorted(RunJournal(parallel_path).keys))

    def test_serial_journal_resumed_in_parallel_and_back(self, tmp_path):
        """Journals are interchangeable between modes: half a sweep done
        serially finishes under workers, and a parallel journal replays
        into a serial rerun untouched."""
        from repro.harness import cell_key

        full = run_experiment(ExperimentConfig(**CONFIG), {"pl": GRAPH})
        partial = tmp_path / "mixed.jsonl"
        with RunJournal(partial) as journal:
            for record in full.records[:4]:
                journal.append(
                    cell_key(record.dataset, record.noise_type,
                             record.noise_level, record.repetition,
                             record.algorithm),
                    record,
                )
        executed = []
        table = run_experiment(
            ExperimentConfig(workers=WORKERS, **CONFIG), {"pl": GRAPH},
            journal=str(partial), progress=executed.append)
        assert len(table) == 8
        assert len(executed) == 4  # only the missing half ran
        executed.clear()
        again = run_experiment(ExperimentConfig(**CONFIG), {"pl": GRAPH},
                               journal=str(partial), progress=executed.append)
        assert len(again) == 8 and executed == []

    def test_budget_and_retry_apply_inside_workers(self, tmp_path):
        config = ExperimentConfig(
            workers=WORKERS,
            budget=CellBudget(time_seconds=120),
            retry_policy=RetryPolicy(max_attempts=2),
            **CONFIG,
        )
        table = run_experiment(config, {"pl": GRAPH},
                               journal=str(tmp_path / "b.jsonl"))
        assert len(table) == 8
        assert all(not r.failed for r in table.records)
        assert all(r.attempts == 1 for r in table.records)


# Driver for the kill/resume test: a parallel sweep against a journal
# that SIGKILLs itself after N cells are durable.  In the parallel path
# the progress callback fires in the parent once per *executed* cell as
# its result is collected (replayed journal cells never fire it), so the
# log measures exactly how many cells each run really ran.
DRIVER = """\
import os, signal, sys
from repro.graphs import powerlaw_cluster_graph
from repro.harness import ExperimentConfig, run_experiment

journal_path, kill_after, workers = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
trace = bool(int(sys.argv[4])) if len(sys.argv) > 4 else False
config = ExperimentConfig(
    name="par", algorithms=["isorank", "nsd"],
    noise_levels=(0.0, 0.02), repetitions=2, seed=7, workers=workers,
    trace=trace,
    cache=bool(int(os.environ.get("REPRO_TEST_CACHE", "0"))),
)
graph = powerlaw_cluster_graph(40, 3, 0.3, seed=5)
count = 0

def progress(message):
    global count
    count += 1
    with open(journal_path + ".log", "a") as handle:
        handle.write(message + "\\n")
    if kill_after and count > kill_after:
        os.kill(os.getpid(), signal.SIGKILL)

table = run_experiment(config, {"pl": graph}, progress=progress,
                       journal=journal_path)
print(len(table), sum(r.failed for r in table.records))
"""


def _run_driver(journal, kill_after, workers, trace=False):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-c", DRIVER, str(journal), str(kill_after),
         str(workers), str(int(trace))],
        capture_output=True, text=True, env=env, timeout=300,
    )


def _journal_keys(path):
    keys = []
    for line in Path(path).read_text().splitlines():
        entry = json.loads(line)
        if entry.get("kind") == "record":
            keys.append(entry["key"])
    return keys


class TestParallelKillAndResume:
    def test_sigkilled_parallel_sweep_resumes(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        log = Path(str(journal) + ".log")

        first = _run_driver(journal, kill_after=3, workers=WORKERS)
        assert first.returncode == -signal.SIGKILL
        survived = _journal_keys(journal)
        # Progress fires after a record is collected but before it is
        # journaled, so when tick kill_after+1 pulls the trigger exactly
        # kill_after records are durable.
        assert len(survived) == 3
        assert len(set(survived)) == len(survived)

        log.unlink()
        second = _run_driver(journal, kill_after=0, workers=WORKERS)
        assert second.returncode == 0, second.stderr
        total, failed = map(int, second.stdout.split())
        assert (total, failed) == (8, 0)
        # Only the missing cells were executed; journaled ones replayed.
        assert len(log.read_text().splitlines()) == 8 - len(survived)
        final = _journal_keys(journal)
        assert len(final) == 8 and len(set(final)) == 8
        assert set(survived) <= set(final)

    def test_traces_survive_kill_and_resume_without_duplication(
            self, tmp_path):
        """A SIGKILLed traced sweep leaves journaled records whose traces
        replay on resume: the finished table carries exactly one trace
        per cell, and the survivors' traces are byte-identical to what
        the resumed journal serves back."""
        journal = tmp_path / "sweep.jsonl"
        first = _run_driver(journal, kill_after=3, workers=WORKERS,
                            trace=True)
        assert first.returncode == -signal.SIGKILL
        survivors = {r for r in _journal_keys(journal)}
        assert len(survivors) == 3
        before = {
            key: trace_structure(RunJournal(journal).get(key).trace)
            for key in survivors
        }
        assert all(structure for structure in before.values())

        second = _run_driver(journal, kill_after=0, workers=WORKERS,
                             trace=True)
        assert second.returncode == 0, second.stderr
        assert second.stdout.split() == ["8", "0"]
        final = _journal_keys(journal)
        assert len(final) == 8 and len(set(final)) == 8  # no duplication
        resumed = RunJournal(journal)
        assert all(r.trace is not None for r in resumed.records)
        for key in survivors:
            assert trace_structure(resumed.get(key).trace) == before[key]

    def test_completed_parallel_journal_makes_rerun_noop(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        log = Path(str(journal) + ".log")
        assert _run_driver(journal, 0, WORKERS).returncode == 0
        keys_before = _journal_keys(journal)
        log.unlink()
        rerun = _run_driver(journal, 0, WORKERS)
        assert rerun.returncode == 0, rerun.stderr
        assert rerun.stdout.split()[0] == "8"
        assert not log.exists()  # zero cells executed on the rerun
        assert _journal_keys(journal) == keys_before
