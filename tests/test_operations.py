"""Tests for graph operations: connectivity, subgraphs, permutations."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    Graph,
    connected_components,
    cycle_graph,
    difference_edges,
    erdos_renyi_graph,
    induced_subgraph,
    is_connected,
    largest_connected_component,
    number_of_components,
    path_graph,
    permute_graph,
)
from repro.graphs.operations import add_edges, bfs_distances, remove_edges


class TestConnectivity:
    def test_single_component(self):
        assert is_connected(cycle_graph(5))
        assert number_of_components(cycle_graph(5)) == 1

    def test_two_components(self):
        g = Graph(5, [(0, 1), (2, 3)])
        labels = connected_components(g)
        assert number_of_components(g) == 3  # {0,1}, {2,3}, {4}
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[4] not in (labels[0], labels[2])

    def test_empty_graph(self):
        assert number_of_components(Graph(0)) == 0
        assert is_connected(Graph(0))

    def test_isolated_nodes(self):
        g = Graph(3)
        assert number_of_components(g) == 3

    def test_labels_contiguous(self):
        g = Graph(6, [(0, 1), (4, 5)])
        labels = connected_components(g)
        assert set(labels) == set(range(number_of_components(g)))


class TestLargestComponent:
    def test_extraction(self):
        g = Graph(7, [(0, 1), (1, 2), (2, 0), (4, 5)])
        sub, nodes = largest_connected_component(g)
        assert sub.num_nodes == 3
        assert sub.num_edges == 3
        assert sorted(nodes.tolist()) == [0, 1, 2]

    def test_connected_graph_unchanged(self):
        g = cycle_graph(6)
        sub, nodes = largest_connected_component(g)
        assert sub == g
        assert nodes.tolist() == list(range(6))

    def test_empty(self):
        sub, nodes = largest_connected_component(Graph(0))
        assert sub.num_nodes == 0
        assert nodes.size == 0


class TestInducedSubgraph:
    def test_relabeling(self):
        g = Graph(5, [(1, 3), (3, 4), (0, 1)])
        sub = induced_subgraph(g, [3, 1, 4])
        # New labels: 3->0, 1->1, 4->2.
        assert sub.num_nodes == 3
        assert sub.edge_set() == {(0, 1), (0, 2)}

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(GraphError):
            induced_subgraph(cycle_graph(4), [0, 0, 1])

    def test_empty_selection(self):
        sub = induced_subgraph(cycle_graph(4), [])
        assert sub.num_nodes == 0


class TestPermutation:
    def test_isomorphism_preserved(self):
        g = erdos_renyi_graph(40, 0.2, seed=0)
        perm = np.random.default_rng(1).permutation(40)
        h = permute_graph(g, perm)
        assert h.num_edges == g.num_edges
        assert np.array_equal(np.sort(h.degrees), np.sort(g.degrees))
        # Edge (u, v) in g iff (perm[u], perm[v]) in h.
        for u, v in g.edges()[:10]:
            assert h.has_edge(int(perm[u]), int(perm[v]))

    def test_identity_permutation(self):
        g = cycle_graph(5)
        assert permute_graph(g, np.arange(5)) == g

    def test_inverse_roundtrip(self):
        g = erdos_renyi_graph(30, 0.2, seed=0)
        perm = np.random.default_rng(2).permutation(30)
        inv = np.argsort(perm)
        assert permute_graph(permute_graph(g, perm), inv) == g

    def test_invalid_permutation_rejected(self):
        with pytest.raises(GraphError):
            permute_graph(cycle_graph(4), [0, 0, 1, 2])
        with pytest.raises(GraphError):
            permute_graph(cycle_graph(4), [0, 1, 2])


class TestEdgeEdits:
    def test_remove(self):
        g = cycle_graph(5)
        h = remove_edges(g, [(0, 1)])
        assert h.num_edges == 4
        assert not h.has_edge(0, 1)

    def test_remove_missing_rejected(self):
        with pytest.raises(GraphError):
            remove_edges(path_graph(4), [(0, 3)])

    def test_add(self):
        g = path_graph(4)
        h = add_edges(g, [(0, 3)])
        assert h.has_edge(0, 3)
        assert h.num_edges == 4

    def test_add_existing_rejected(self):
        with pytest.raises(GraphError):
            add_edges(path_graph(4), [(0, 1)])

    def test_difference(self):
        a = Graph(4, [(0, 1), (1, 2)])
        b = Graph(4, [(1, 2), (2, 3)])
        only_a, only_b = difference_edges(a, b)
        assert only_a == {(0, 1)}
        assert only_b == {(2, 3)}


class TestBfsDistances:
    def test_path_distances(self):
        dist = bfs_distances(path_graph(5), 0)
        assert dist.tolist() == [0, 1, 2, 3, 4]

    def test_unreachable(self):
        g = Graph(4, [(0, 1)])
        dist = bfs_distances(g, 0)
        assert dist[2] == -1 and dist[3] == -1

    def test_max_depth(self):
        dist = bfs_distances(path_graph(6), 0, max_depth=2)
        assert dist.tolist() == [0, 1, 2, -1, -1, -1]
