"""Semantics-neutrality of the artifact cache at the sweep level.

The contract: ``cache=True`` is an *execution* knob, exactly like
``workers=N``.  A cached sweep emits bit-identical measures, mappings,
diagnostics, and CSV rows (modulo wall-clock timing columns) to an
uncached one — for every registered algorithm and every measure — and
composes with the other execution knobs: parallel workers, budgets, and
SIGKILL+resume journaling all behave unchanged with caching on.

``REPRO_TEST_CACHE=1`` (the CI cache job) additionally flips the shared
sweep configuration in :mod:`tests.test_parallel` to run cached.
"""

import csv
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.algorithms import list_algorithms
from repro.cache import artifact_cache, caching
from repro.graphs import powerlaw_cluster_graph
from repro.harness import ExperimentConfig, RunJournal, run_experiment
from repro.noise import make_pair
from repro.observability import counter_totals

ROOT = Path(__file__).resolve().parent.parent

GRAPH = powerlaw_cluster_graph(40, 3, 0.3, seed=5)
PAIR = make_pair(GRAPH, "one-way", 0.02, seed=9)

ALL_MEASURES = ("accuracy", "mnc", "ec", "ics", "s3")

# Small but complete: every registered algorithm, every measure.
FULL_CONFIG = dict(
    name="neutrality", algorithms=sorted(list_algorithms()),
    noise_levels=(0.0, 0.02), repetitions=1, seed=7,
    measures=ALL_MEASURES,
)


def canonical(table):
    """Order- and timing-insensitive view of a result table."""
    return sorted(
        (r.algorithm, r.dataset, r.noise_type, round(r.noise_level, 6),
         r.repetition, r.assignment, tuple(sorted(r.measures.items())),
         r.failed, r.attempts, tuple(map(str, r.diagnostics)))
        for r in table.records
    )


# Timing and memory legitimately differ between runs of the same cell;
# every other CSV column must be bit-identical.
_TIMING_PREFIXES = ("similarity_time", "assignment_time",
                    "peak_memory_bytes", "trace_")


def _semantic_csv_rows(path):
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle))
    header, body = rows[0], rows[1:]
    keep = [i for i, name in enumerate(header)
            if not name.startswith(_TIMING_PREFIXES)
            and not name.startswith("counter_cache_")]
    return [tuple(header[i] for i in keep)] + sorted(
        tuple(row[i] for i in keep) for row in body
    )


class TestSweepNeutrality:
    @pytest.fixture(scope="class")
    def tables(self):
        off = run_experiment(ExperimentConfig(**FULL_CONFIG), {"pl": GRAPH})
        on = run_experiment(ExperimentConfig(cache=True, **FULL_CONFIG),
                            {"pl": GRAPH})
        return off, on

    def test_all_algorithms_all_measures_bit_identical(self, tables):
        off, on = tables
        assert len(on) == len(off) == 2 * len(list_algorithms())
        assert canonical(on) == canonical(off)
        # The comparison above is not vacuous: every cell succeeded and
        # every requested measure is present.
        for record in on.records:
            assert not record.failed
            assert set(record.measures) == set(ALL_MEASURES)

    def test_csv_rows_identical_modulo_timing(self, tables, tmp_path):
        off, on = tables
        off_path, on_path = tmp_path / "off.csv", tmp_path / "on.csv"
        off.to_csv(off_path)
        on.to_csv(on_path)
        assert _semantic_csv_rows(on_path) == _semantic_csv_rows(off_path)

    def test_serial_vs_workers4_with_cache(self):
        serial = run_experiment(
            ExperimentConfig(cache=True, **FULL_CONFIG), {"pl": GRAPH})
        parallel = run_experiment(
            ExperimentConfig(cache=True, workers=4, **FULL_CONFIG),
            {"pl": GRAPH})
        assert canonical(parallel) == canonical(serial)

    def test_cache_excluded_from_journal_fingerprint(self, tmp_path):
        """An uncached journal resumes under a cached config (and vice
        versa): cache, like workers, never invalidates a resume."""
        journal = tmp_path / "sweep.jsonl"
        config = dict(name="fp", algorithms=["isorank", "nsd"],
                      noise_levels=(0.0,), repetitions=1, seed=3)
        run_experiment(ExperimentConfig(**config), {"pl": GRAPH},
                       journal=str(journal))
        executed = []
        table = run_experiment(
            ExperimentConfig(cache=True, **config), {"pl": GRAPH},
            journal=str(journal), progress=executed.append)
        assert len(table) == 2 and executed == []  # pure replay


class TestPerAlgorithmNeutrality:
    @pytest.mark.parametrize("name", sorted(list_algorithms()))
    def test_mapping_and_diagnostics_identical(self, name):
        plain = repro.align(PAIR.source, PAIR.target, method=name, seed=3)
        with caching(True), artifact_cache():
            cached = repro.align(PAIR.source, PAIR.target, method=name,
                                 seed=3)
            warm = repro.align(PAIR.source, PAIR.target, method=name, seed=3)
        assert np.array_equal(cached.mapping, plain.mapping)
        assert np.array_equal(warm.mapping, plain.mapping)
        assert [str(d) for d in cached.diagnostics] == \
            [str(d) for d in plain.diagnostics]


class TestCacheCounters:
    """The acceptance criteria, asserted through the trace counters that
    a cached sweep records into its cells."""

    @staticmethod
    def _totals(table, algorithm):
        (record,) = [r for r in table.records if r.algorithm == algorithm]
        return counter_totals(record.trace)

    def test_grasp_eigensolves_once_per_graph_cold(self):
        config = ExperimentConfig(
            name="eig", algorithms=["grasp"], noise_levels=(0.0,),
            repetitions=1, seed=7, trace=True, cache=True,
        )
        table = run_experiment(config, {"pl": GRAPH})
        totals = self._totals(table, "grasp")
        assert totals["eigensolver_calls"] == 2  # one per graph, cold
        assert totals["cache_misses"] > 0

    def test_second_consumer_gets_pure_hits(self):
        """isorank runs first and produces the stochastic operators and
        the degree prior; nsd (same artifacts) then records zero misses
        for them — each (graph, params) artifact is produced exactly
        once per cell."""
        config = ExperimentConfig(
            name="share", algorithms=["isorank", "nsd"],
            noise_levels=(0.0,), repetitions=1, seed=7,
            algorithm_params={"nsd": {"prior": "degree"}},
            trace=True, cache=True,
        )
        table = run_experiment(config, {"pl": GRAPH})
        iso = self._totals(table, "isorank")
        nsd = self._totals(table, "nsd")
        # isorank, first in the cell, populates the cache...
        assert iso["cache_misses"] == 3  # 2× column_stochastic + prior
        assert iso.get("cache_hits", 0) == 0
        # ...and nsd consumes it without producing anything new.
        assert nsd["cache_hits"] == 3
        assert nsd.get("cache_misses", 0) == 0

    def test_grasp_warm_cell_eigensolves_zero_times(self):
        with caching(True), artifact_cache():
            repro.align(PAIR.source, PAIR.target, method="grasp", seed=3)
            from repro.observability import capture_trace, tracing
            with tracing(True), capture_trace() as collector:
                repro.align(PAIR.source, PAIR.target, method="grasp", seed=3)
        totals = counter_totals(collector.to_payload())
        assert totals.get("eigensolver_calls", 0) == 0  # fully warm
        assert totals.get("cache_misses", 0) == 0
        assert totals["cache_hits"] >= 4

    def test_uncached_sweep_records_no_cache_counters(self):
        config = ExperimentConfig(
            name="plain", algorithms=["isorank"], noise_levels=(0.0,),
            repetitions=1, seed=7, trace=True,
        )
        table = run_experiment(config, {"pl": GRAPH})
        totals = self._totals(table, "isorank")
        assert not any(key.startswith("cache_") for key in totals)


# Driver for kill/resume with caching on: same shape as the parallel
# suite's driver, but the sweep runs with cache=True (and trace, so the
# journaled records prove cached cells journal their telemetry too).
DRIVER = """\
import os, signal, sys
from repro.graphs import powerlaw_cluster_graph
from repro.harness import ExperimentConfig, run_experiment

journal_path, kill_after, workers = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
config = ExperimentConfig(
    name="cache-kill", algorithms=["isorank", "nsd"],
    noise_levels=(0.0, 0.02), repetitions=2, seed=7, workers=workers,
    cache=True,
)
graph = powerlaw_cluster_graph(40, 3, 0.3, seed=5)
count = 0

def progress(message):
    global count
    count += 1
    if kill_after and count > kill_after:
        os.kill(os.getpid(), signal.SIGKILL)

table = run_experiment(config, {"pl": graph}, progress=progress,
                       journal=journal_path)
print(len(table), sum(r.failed for r in table.records))
"""


def _run_driver(journal, kill_after, workers):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-c", DRIVER, str(journal), str(kill_after),
         str(workers)],
        capture_output=True, text=True, env=env, timeout=300,
    )


class TestKillResumeWithCache:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_sigkilled_cached_sweep_resumes(self, tmp_path, workers):
        journal = tmp_path / "sweep.jsonl"
        first = _run_driver(journal, kill_after=3, workers=workers)
        assert first.returncode == -signal.SIGKILL
        survived = sorted(RunJournal(journal).keys)
        assert len(survived) == 3

        second = _run_driver(journal, kill_after=0, workers=workers)
        assert second.returncode == 0, second.stderr
        total, failed = map(int, second.stdout.split())
        assert (total, failed) == (8, 0)
        final = RunJournal(journal)
        assert len(sorted(final.keys)) == 8
        assert set(survived) <= set(final.keys)
        # The resumed sweep matches a fresh uncached run bit-for-bit.
        reference = run_experiment(
            ExperimentConfig(name="cache-kill",
                             algorithms=["isorank", "nsd"],
                             noise_levels=(0.0, 0.02), repetitions=2,
                             seed=7),
            {"pl": GRAPH})
        by_key = {
            (r.algorithm, round(r.noise_level, 6), r.repetition):
                tuple(sorted(r.measures.items()))
            for r in reference.records
        }
        for record in final.records:
            key = (record.algorithm, round(record.noise_level, 6),
                   record.repetition)
            assert tuple(sorted(record.measures.items())) == by_key[key]
