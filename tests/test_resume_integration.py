"""Integration: SIGKILL a sweep mid-run, rerun, and resume from the journal.

These tests drive real child Python processes (no mocking): the first run
is hard-killed partway through — the same failure as a node crash or OOM
kill of the orchestrator — and the rerun with the same journal path must
finish the sweep without redoing any journaled cell.  Stable seeding is
verified the same way: two fresh interpreters (with different
``PYTHONHASHSEED``) must journal byte-identical cell keys and derive
identical per-cell seeds.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.harness import cell_seed

ROOT = Path(__file__).resolve().parent.parent

# Driver: runs a 4-cell sweep against a journal; optionally SIGKILLs
# itself after N cells have completed (the progress callback fires before
# each cell, so "count > N" means N cells finished and the N+1th is about
# to start).  Logs every executed cell so the test can count reruns.
DRIVER = """\
import os, signal, sys
from repro.graphs import powerlaw_cluster_graph
from repro.harness import ExperimentConfig, run_experiment

journal_path, kill_after = sys.argv[1], int(sys.argv[2])
config = ExperimentConfig(
    name="resume", algorithms=["isorank", "nsd"],
    noise_levels=(0.0, 0.02), repetitions=1, seed=7,
)
graph = powerlaw_cluster_graph(40, 3, 0.3, seed=5)
count = 0

def progress(message):
    global count
    count += 1
    with open(journal_path + ".log", "a") as handle:
        handle.write(message + "\\n")
    if kill_after and count > kill_after:
        os.kill(os.getpid(), signal.SIGKILL)

table = run_experiment(config, {"pl": graph}, progress=progress,
                       journal=journal_path)
print(len(table), sum(r.failed for r in table.records))
"""


def _driver_env(hash_seed=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if hash_seed is not None:
        env["PYTHONHASHSEED"] = hash_seed
    return env


def _run_driver(journal, kill_after, hash_seed=None):
    return subprocess.run(
        [sys.executable, "-c", DRIVER, str(journal), str(kill_after)],
        capture_output=True, text=True, env=_driver_env(hash_seed),
        timeout=300,
    )


def _journal_keys(path):
    keys = []
    for line in Path(path).read_text().splitlines():
        entry = json.loads(line)
        if entry.get("kind") == "record":
            keys.append(entry["key"])
    return keys


class TestKillAndResume:
    def test_sigkilled_sweep_resumes_without_rerunning(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        log = Path(str(journal) + ".log")

        # First run: SIGKILL after 2 of 4 cells complete.
        first = _run_driver(journal, kill_after=2)
        assert first.returncode == -9  # died by SIGKILL, mid-sweep
        survived = _journal_keys(journal)
        assert len(survived) == 2  # exactly the completed cells are durable

        # Second run: same command, same journal — must finish the sweep.
        log.unlink()
        second = _run_driver(journal, kill_after=0)
        assert second.returncode == 0, second.stderr
        total, failed = map(int, second.stdout.split())
        assert (total, failed) == (4, 0)

        # Only the two missing cells executed; the journaled two were
        # replayed, not rerun.
        rerun_cells = log.read_text().splitlines()
        assert len(rerun_cells) == 2
        final_keys = _journal_keys(journal)
        assert len(final_keys) == 4
        assert len(set(final_keys)) == 4
        assert set(survived) <= set(final_keys)

    def test_completed_journal_makes_rerun_a_noop(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        assert _run_driver(journal, kill_after=0).returncode == 0
        log = Path(str(journal) + ".log")
        log.unlink()
        rerun = _run_driver(journal, kill_after=0)
        assert rerun.returncode == 0, rerun.stderr
        assert not log.exists()  # zero cells executed
        assert rerun.stdout.split()[0] == "4"  # table still complete


class TestStableSeeding:
    def test_pinned_seed_values(self):
        """Regression pin: these values must never drift across releases
        (a drift silently changes every journal key and noise pair).

        Re-pinned once, deliberately, when the seed derivation switched
        from a 3-decimal rounding of the noise level to the same
        6-decimal canonical form ``cell_key`` uses — the old precision
        mismatch gave levels distinct at the 4th decimal different
        journal keys but identical noise pairs.
        """
        assert cell_seed(0, "arenas", "one-way", 0.0, 0) == 1575777382
        assert cell_seed(0, "arenas", "one-way", 0.05, 3) == 4135503981
        assert cell_seed(7, "pl", "two-way", 0.01, 1) == 4213211470

    def test_seed_distinguishes_every_axis(self):
        base = cell_seed(0, "d", "t", 0.01, 0)
        assert cell_seed(1, "d", "t", 0.01, 0) != base
        assert cell_seed(0, "e", "t", 0.01, 0) != base
        assert cell_seed(0, "d", "u", 0.01, 0) != base
        assert cell_seed(0, "d", "t", 0.02, 0) != base
        assert cell_seed(0, "d", "t", 0.01, 1) != base

    def test_seed_precision_matches_cell_key(self):
        """Seeds and journal keys canonicalize noise levels identically:
        levels distinct at the 4th decimal get distinct keys *and*
        distinct seeds; levels equal at 6 decimals collide in both."""
        from repro.harness import cell_key

        fine_a, fine_b = 0.0101, 0.0102  # identical under 3-decimal rounding
        assert (cell_key("d", "t", fine_a, 0, "a")
                != cell_key("d", "t", fine_b, 0, "a"))
        assert cell_seed(0, "d", "t", fine_a, 0) != cell_seed(0, "d", "t", fine_b, 0)

        same_a, same_b = 0.05, 0.0500000001  # equal at 6 decimals
        assert (cell_key("d", "t", same_a, 0, "a")
                == cell_key("d", "t", same_b, 0, "a"))
        assert cell_seed(0, "d", "t", same_a, 0) == cell_seed(0, "d", "t", same_b, 0)

    def test_identical_keys_across_fresh_processes(self, tmp_path):
        """Same config + seed → byte-identical journal cell keys, even
        under different hash salts (the bug the stable digest fixes)."""
        outputs = []
        for salt, name in (("1", "a"), ("4242", "b")):
            journal = tmp_path / f"{name}.jsonl"
            result = _run_driver(journal, kill_after=0, hash_seed=salt)
            assert result.returncode == 0, result.stderr
            outputs.append(_journal_keys(journal))
        keys_a, keys_b = outputs
        assert keys_a == keys_b
        assert len(keys_a) == 4


class TestStableSeedingAcrossHashSalts:
    def test_cell_seed_ignores_pythonhashseed(self):
        """Two interpreters with different string-hash salts derive the
        same per-cell seeds (``hash()`` would not)."""
        probe = (
            "from repro.harness import cell_seed\n"
            "print([cell_seed(7, 'pl', 'one-way', l, r)"
            " for l in (0.0, 0.02) for r in (0, 1)])\n"
        )
        outs = []
        for salt in ("1", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", probe],
                capture_output=True, text=True, env=_driver_env(salt),
                timeout=120,
            )
            assert result.returncode == 0, result.stderr
            outs.append(result.stdout)
        assert outs[0] == outs[1]
