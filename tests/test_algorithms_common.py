"""Interface-contract tests run against every registered algorithm."""

import numpy as np
import pytest

from repro.algorithms import (
    ALGORITHM_REGISTRY,
    get_algorithm,
    list_algorithms,
)
from repro.algorithms.base import AlgorithmInfo, AlignmentResult
from repro.exceptions import AlgorithmError
from repro.graphs import Graph, powerlaw_cluster_graph
from repro.measures import accuracy
from repro.noise import make_pair

ALL_NAMES = list_algorithms()

# Small graph so the full matrix of tests stays fast; PL topology because
# every algorithm in the paper handles power-law graphs at least moderately.
BASE = powerlaw_cluster_graph(60, 3, 0.3, seed=42)
CLEAN = make_pair(BASE, "one-way", 0.0, seed=43)


class TestRegistry:
    def test_all_nine_registered(self):
        expected = {"isorank", "graal", "nsd", "lrea", "regal",
                    "gwl", "s-gwl", "cone", "grasp"}
        assert set(ALL_NAMES) == expected

    def test_get_algorithm_case_insensitive(self):
        assert type(get_algorithm("IsoRank")) is ALGORITHM_REGISTRY["isorank"]

    def test_unknown_name_rejected(self):
        with pytest.raises(AlgorithmError):
            get_algorithm("deepalign9000")

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_info_complete(self, name):
        info = ALGORITHM_REGISTRY[name].info
        assert isinstance(info, AlgorithmInfo)
        assert info.name == name
        assert 2005 < info.year < 2023
        assert info.default_assignment in ("nn", "sg", "mwm", "jv")
        assert info.time_complexity.startswith("O(")


@pytest.mark.parametrize("name", ALL_NAMES)
class TestContracts:
    def test_similarity_shape(self, name):
        algo = get_algorithm(name)
        sim = algo.similarity(CLEAN.source, CLEAN.target, seed=0)
        if hasattr(sim, "toarray"):
            sim = sim.toarray()
        assert sim.shape == (CLEAN.source.num_nodes, CLEAN.target.num_nodes)
        assert np.all(np.isfinite(sim))

    def test_align_returns_result(self, name):
        algo = get_algorithm(name)
        result = algo.align(CLEAN.source, CLEAN.target, seed=0)
        assert isinstance(result, AlignmentResult)
        assert result.mapping.shape == (CLEAN.source.num_nodes,)
        assert result.similarity_time >= 0.0
        assert result.assignment_time >= 0.0
        assert result.total_time == pytest.approx(
            result.similarity_time + result.assignment_time
        )

    def test_mapping_valid_targets(self, name):
        result = get_algorithm(name).align(CLEAN.source, CLEAN.target, seed=0)
        mapping = result.mapping
        assert mapping.min() >= -1
        assert mapping.max() < CLEAN.target.num_nodes

    def test_jv_mapping_one_to_one(self, name):
        result = get_algorithm(name).align(CLEAN.source, CLEAN.target,
                                           assignment="jv", seed=0)
        matched = result.mapping[result.mapping >= 0]
        assert len(set(matched.tolist())) == len(matched)

    def test_isomorphic_alignment_good(self, name):
        """Every algorithm must do far better than chance on isomorphic input."""
        result = get_algorithm(name).align(CLEAN.source, CLEAN.target, seed=0)
        acc = accuracy(result.mapping, CLEAN.ground_truth)
        assert acc > 0.5, f"{name} scored {acc} on isomorphic graphs"

    def test_empty_graph_rejected(self, name):
        with pytest.raises(AlgorithmError):
            get_algorithm(name).align(Graph(0), CLEAN.target)

    def test_non_graph_rejected(self, name):
        with pytest.raises(AlgorithmError):
            get_algorithm(name).align("nope", CLEAN.target)

    def test_repr(self, name):
        assert type(get_algorithm(name)).__name__ in repr(get_algorithm(name))


@pytest.mark.parametrize("name", ["isorank", "grasp", "lrea", "nsd"])
class TestDeterminism:
    def test_same_seed_same_mapping(self, name):
        a = get_algorithm(name).align(CLEAN.source, CLEAN.target, seed=7)
        b = get_algorithm(name).align(CLEAN.source, CLEAN.target, seed=7)
        assert np.array_equal(a.mapping, b.mapping)


class TestRectangularInputs:
    """Source and target of different sizes must not crash the pipeline."""

    @pytest.mark.parametrize("name", ["isorank", "nsd", "regal", "grasp"])
    def test_smaller_target(self, name):
        source = powerlaw_cluster_graph(40, 3, 0.3, seed=1)
        target = powerlaw_cluster_graph(30, 3, 0.3, seed=2)
        result = get_algorithm(name).align(source, target, seed=0)
        assert result.mapping.shape == (40,)
        assert np.sum(result.mapping >= 0) <= 30

    @pytest.mark.parametrize("name", ["isorank", "nsd", "regal", "grasp"])
    def test_larger_target(self, name):
        source = powerlaw_cluster_graph(30, 3, 0.3, seed=1)
        target = powerlaw_cluster_graph(40, 3, 0.3, seed=2)
        result = get_algorithm(name).align(source, target, seed=0)
        assert result.mapping.shape == (30,)
