"""Tests for per-cell time+memory budgets and the hardened child runner."""

import os
import signal
import time

import numpy as np
import pytest

from repro.algorithms.base import (
    ALGORITHM_REGISTRY,
    AlgorithmInfo,
    AlignmentAlgorithm,
    register_algorithm,
)
from repro.exceptions import ExperimentError
from repro.graphs import powerlaw_cluster_graph
from repro.harness import (
    PROFILES,
    CellBudget,
    run_cell_with_budget,
    run_cell_with_timeout,
)
from repro.noise import make_pair

PAIR = make_pair(powerlaw_cluster_graph(40, 3, 0.3, seed=71), "one-way",
                 0.0, seed=72)

GIB = 2 ** 30


def _info(name):
    return AlgorithmInfo(
        name=name, year=2026, preprocessing="no", biological=False,
        default_assignment="jv", optimizes="any", time_complexity="O(?)",
        parameters={},
    )


class _Hog(AlignmentAlgorithm):
    """Allocates far past any sane budget (~4 GiB) before returning."""

    info = _info("_hog")

    def _similarity(self, source, target, rng):
        hoard = []
        for _ in range(256):
            hoard.append(np.ones((16 * 2 ** 20,), dtype=np.float64))
        return np.ones((source.num_nodes, target.num_nodes))


class _SuddenDeath(AlignmentAlgorithm):
    """Exits the process abruptly — the pipe closes with nothing sent."""

    info = _info("_suddendeath")

    def _similarity(self, source, target, rng):
        os._exit(7)


class _Unkillable(AlignmentAlgorithm):
    """Ignores SIGTERM, like a child wedged in a C-level loop."""

    info = _info("_unkillable")

    def _similarity(self, source, target, rng):
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        time.sleep(600)
        return np.ones((source.num_nodes, target.num_nodes))


class _DiagnoseThenHang(AlignmentAlgorithm):
    """Emits a degradation diagnostic, then wedges until killed."""

    info = _info("_diaghang")

    def _similarity(self, source, target, rng):
        from repro.diagnostics import record_diagnostic

        record_diagnostic("similarity", "fallback", "about to wedge",
                          fallback_used="none")
        time.sleep(600)
        return np.ones((source.num_nodes, target.num_nodes))


@pytest.fixture(scope="module", autouse=True)
def _register_misbehavers():
    for cls in (_Hog, _SuddenDeath, _Unkillable, _DiagnoseThenHang):
        register_algorithm(cls)
    yield
    for cls in (_Hog, _SuddenDeath, _Unkillable, _DiagnoseThenHang):
        ALGORITHM_REGISTRY.pop(cls.info.name, None)


class TestCellBudgetValidation:
    def test_rejects_nonpositive_time(self):
        with pytest.raises(ExperimentError):
            CellBudget(time_seconds=0)

    def test_rejects_nonpositive_memory(self):
        with pytest.raises(ExperimentError):
            CellBudget(time_seconds=1, memory_bytes=0)

    def test_rejects_negative_grace(self):
        with pytest.raises(ExperimentError):
            CellBudget(time_seconds=1, grace_seconds=-1)

    def test_rejects_budget_with_no_limits(self):
        """A budget that limits nothing is a configuration error."""
        with pytest.raises(ExperimentError):
            CellBudget()

    def test_memory_only_budget_is_valid(self):
        budget = CellBudget(memory_bytes=GIB)
        assert budget.time_seconds is None
        assert budget.memory_bytes == GIB

    def test_profile_budgets(self):
        budget = PROFILES["full"].cell_budget()
        assert budget.time_seconds == 10800.0
        assert budget.memory_bytes == 256 * GIB  # the paper's machine


class TestBudgetRunner:
    def test_cell_within_budget_succeeds(self):
        budget = CellBudget(time_seconds=60, memory_bytes=4 * GIB)
        record = run_cell_with_budget("isorank", PAIR, "pl", 2, budget)
        assert not record.failed
        assert record.dataset == "pl"
        assert record.repetition == 2
        assert "accuracy" in record.measures

    def test_memory_cap_reported_as_failed_record(self):
        budget = CellBudget(time_seconds=120, memory_bytes=1 * GIB)
        record = run_cell_with_budget("_hog", PAIR, "pl", 0, budget)
        assert record.failed
        # Either numpy raised MemoryError cleanly inside the child, or the
        # child died under the cap; both are the paper's ✗, not a crash.
        assert "MemoryError" in record.error or "died" in record.error

    def test_memory_only_budget_runs_cell_without_deadline(self):
        """time_seconds=None blocks on the child instead of polling a
        deadline; a well-behaved cell completes normally."""
        budget = CellBudget(memory_bytes=4 * GIB)
        record = run_cell_with_budget("isorank", PAIR, "pl", 1, budget)
        assert not record.failed
        assert "accuracy" in record.measures

    def test_memory_only_budget_still_enforces_the_cap(self):
        budget = CellBudget(memory_bytes=1 * GIB)
        record = run_cell_with_budget("_hog", PAIR, "pl", 0, budget)
        assert record.failed
        assert "MemoryError" in record.error or "died" in record.error

    def test_dead_child_yields_exit_code_record(self):
        budget = CellBudget(time_seconds=60)
        record = run_cell_with_budget("_suddendeath", PAIR, "pl", 0, budget)
        assert record.failed
        assert "died without result" in record.error
        assert "7" in record.error

    def test_sigterm_immune_child_is_killed(self):
        budget = CellBudget(time_seconds=1.0, grace_seconds=0.5)
        start = time.monotonic()
        record = run_cell_with_budget("_unkillable", PAIR, "pl", 0, budget)
        elapsed = time.monotonic() - start
        assert record.failed
        assert "timeout" in record.error
        # terminate -> grace -> kill, not the child's 600 s sleep.
        assert elapsed < 30


class TestPartialTelemetry:
    """Regression (dead-child telemetry drop): a child killed mid-span
    used to lose every diagnostic and span it had produced.  The child
    now streams completed root spans and diagnostics over the pipe as
    they happen, so the parent's failure record carries whatever the
    child flushed before dying."""

    def test_hang_mid_span_keeps_flushed_partial_trace(self):
        from repro.faults import FaultSpec, inject_fault

        budget = CellBudget(time_seconds=2.0, grace_seconds=0.5)
        with inject_fault("isorank", FaultSpec(mode="hang")):
            record = run_cell_with_budget("isorank", PAIR, "pl", 0, budget,
                                          trace=True)
        assert record.failed
        assert "timeout" in record.error
        # The hang fires inside the similarity stage, so the preflight
        # root span had already closed and streamed to the parent.
        assert record.trace is not None
        stages = [entry["stage"] for entry in record.trace["spans"]]
        assert "preflight" in stages
        assert "similarity" not in stages  # never closed — mid-span kill

    def test_sudden_death_keeps_flushed_partial_trace(self):
        budget = CellBudget(time_seconds=60)
        record = run_cell_with_budget("_suddendeath", PAIR, "pl", 0, budget,
                                      trace=True)
        assert record.failed
        assert "died without result" in record.error
        assert record.trace is not None
        stages = [entry["stage"] for entry in record.trace["spans"]]
        assert "preflight" in stages

    def test_timeout_keeps_streamed_diagnostics(self):
        budget = CellBudget(time_seconds=2.0, grace_seconds=0.5)
        record = run_cell_with_budget("_diaghang", PAIR, "pl", 0, budget)
        assert record.failed
        assert "timeout" in record.error
        # The diagnostic the child emitted just before wedging streamed
        # over the pipe and survived the kill.
        assert any(d["kind"] == "fallback" and "wedge" in d["message"]
                   for d in record.diagnostics)

    def test_untraced_timeout_has_no_trace(self):
        budget = CellBudget(time_seconds=1.0, grace_seconds=0.5)
        record = run_cell_with_budget("_unkillable", PAIR, "pl", 0, budget)
        assert record.failed and record.trace is None


class TestRecordRetagging:
    def test_retag_preserves_attempts_and_measures(self, monkeypatch):
        """Regression: the parent's re-tag of the child's record once
        rebuilt it field by field and dropped ``attempts`` back to 1, so
        journaled records under budget+retry misreported retry counts."""
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("monkeypatching the child needs fork inheritance")

        import repro.harness.runner as runner_module
        from repro.harness import RunRecord

        def fake_run_cell(algorithm_name, pair, dataset, repetition, **kwargs):
            return RunRecord(
                algorithm=algorithm_name, dataset=dataset,
                noise_type=pair.noise_type, noise_level=pair.noise_level,
                repetition=repetition, assignment="jv",
                measures={"accuracy": 0.75}, similarity_time=1.25,
                assignment_time=0.25, peak_memory_bytes=4096, attempts=3,
            )

        monkeypatch.setattr(runner_module, "run_cell", fake_run_cell)
        budget = CellBudget(time_seconds=60)
        record = run_cell_with_budget("isorank", PAIR, "pl", 5, budget)
        assert record.attempts == 3  # the child's count, not a reset 1
        assert record.dataset == "pl" and record.repetition == 5
        assert record.measures == {"accuracy": 0.75}
        assert record.peak_memory_bytes == 4096


class TestTimeoutCompatibility:
    def test_timeout_front_accepts_memory_limit(self):
        record = run_cell_with_timeout("_hog", PAIR, "pl", 0,
                                       timeout_seconds=120,
                                       memory_limit_bytes=1 * GIB)
        assert record.failed
        assert "MemoryError" in record.error or "died" in record.error

    def test_timeout_front_reports_dead_child(self):
        record = run_cell_with_timeout("_suddendeath", PAIR, "pl", 0,
                                       timeout_seconds=60)
        assert record.failed
        assert "died without result" in record.error
