"""Graceful-degradation suite: preflight contracts, numerical watchdog,
fallback observability, and diagnostics plumbing end to end.

Acceptance (ISSUE PR 3): a sweep over fixtures that includes a
disconnected graph and an injected-NaN fault completes with zero
uncaught exceptions; the journal and report distinguish clean, degraded,
and failed cells; serial and parallel runs produce identical diagnostic
records.
"""

import json

import numpy as np
import pytest

import repro
from repro.algorithms import get_algorithm
from repro.algorithms.base import ALGORITHM_REGISTRY, _expand_mapping
from repro.diagnostics import Diagnostic, capture_diagnostics, record_diagnostic
from repro.exceptions import NumericsError, PreflightError
from repro.faults import FaultSpec, inject_fault
from repro.graphs import Graph, powerlaw_cluster_graph
from repro.harness import (
    ExperimentConfig,
    RunJournal,
    run_cell,
    run_experiment,
)
from repro.harness.journal import config_fingerprint
from repro.harness.report import markdown_report
from repro.harness.results import RunRecord
from repro.noise import make_pair
from repro.numerics import check_similarity, numerics_policy

TWO_TRIANGLES = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])

CONNECTED = powerlaw_cluster_graph(30, 3, 0.3, seed=8)
PAIR = make_pair(CONNECTED, "one-way", 0.0, seed=9)
SPLIT_PAIR = make_pair(TWO_TRIANGLES, "one-way", 0.0, seed=9)


class TestDiagnosticPrimitives:
    def test_record_without_scope_is_noop(self):
        d = record_diagnostic("stage", "kind", "msg")
        assert isinstance(d, Diagnostic)

    def test_capture_collects(self):
        with capture_diagnostics() as events:
            record_diagnostic("watchdog", "zero_similarity", "all zero")
        assert len(events) == 1
        assert events[0].stage == "watchdog"

    def test_nested_scopes_both_collect(self):
        with capture_diagnostics() as outer:
            with capture_diagnostics() as inner:
                record_diagnostic("s", "k", "m")
        assert len(outer) == len(inner) == 1

    def test_round_trip(self):
        d = Diagnostic("preflight", "disconnected_input", "msg", "lcc")
        assert Diagnostic.from_dict(d.to_dict()) == d


class TestPreflightContracts:
    @pytest.mark.parametrize("name", ["grasp", "cone"])
    def test_connected_contract_declared(self, name):
        assert ALGORITHM_REGISTRY[name].info.requires_connected

    @pytest.mark.parametrize("name", ["grasp", "cone"])
    def test_disconnected_input_degrades_not_crashes(self, name):
        """Paper §6.4.2: spectrum-based methods need a connected graph.

        The harness mitigation is the paper's own: restrict to the
        largest connected component and record that it happened.
        """
        result = repro.align(SPLIT_PAIR.source, SPLIT_PAIR.target,
                             method=name, seed=0)
        assert result.degraded
        kinds = {d.kind for d in result.diagnostics}
        assert "disconnected_input" in kinds
        assert all(d.fallback_used == "largest_connected_component"
                   for d in result.diagnostics
                   if d.kind == "disconnected_input")
        # nodes outside the LCC are explicitly unmatched, not garbage
        assert result.mapping.shape == (6,)
        assert np.any(result.mapping == -1)
        matched = result.mapping[result.mapping >= 0]
        assert np.all((matched >= 0) & (matched < 6))

    def test_connected_input_stays_clean(self):
        result = repro.align(PAIR.source, PAIR.target, method="grasp", seed=0)
        assert not result.degraded
        assert result.diagnostics == []

    def test_tolerant_algorithm_unaffected(self):
        result = repro.align(SPLIT_PAIR.source, SPLIT_PAIR.target,
                             method="isorank", seed=0)
        assert not any(d.kind == "disconnected_input"
                       for d in result.diagnostics)

    def test_min_nodes_contract(self):
        tiny = Graph(1, ())
        with pytest.raises(PreflightError):
            get_algorithm("grasp").align(tiny, tiny, seed=0)

    def test_unmitigable_input_degrades_to_unmatched(self):
        """When the LCC itself violates the contract (e.g. an edgeless
        graph), the result is a degraded all-unmatched skip, not a crash."""
        edgeless = Graph(4)
        result = repro.align(edgeless, edgeless, method="grasp", seed=0)
        assert result.mapping.tolist() == [-1, -1, -1, -1]
        assert result.degraded
        assert any(d.kind == "contract_violation"
                   and d.fallback_used == "unmatched_result"
                   for d in result.diagnostics)

    def test_expand_mapping_lifts_indices(self):
        source_nodes = np.array([0, 1, 2])
        target_nodes = np.array([3, 4, 5])
        restricted = np.array([2, 0, -1])
        full = _expand_mapping(restricted, source_nodes, target_nodes, 6)
        assert full.tolist() == [5, 3, -1, -1, -1, -1]


class TestNumericalWatchdog:
    def test_sanitize_replaces_nonfinite(self):
        sim = np.array([[1.0, np.nan], [np.inf, 0.5]])
        with capture_diagnostics() as events:
            fixed = check_similarity(sim)
        assert np.all(np.isfinite(fixed))
        assert events[0].kind == "nonfinite_similarity"
        assert events[0].fallback_used == "sanitized"

    def test_strict_raises(self):
        sim = np.array([[1.0, np.nan]])
        with numerics_policy("strict"):
            with pytest.raises(NumericsError):
                check_similarity(sim)

    def test_zero_matrix_flagged(self):
        with capture_diagnostics() as events:
            check_similarity(np.zeros((3, 3)))
        assert events[0].kind == "zero_similarity"

    def test_finite_matrix_untouched(self):
        sim = np.array([[0.2, 0.8], [0.5, 0.1]])
        with capture_diagnostics() as events:
            out = check_similarity(sim)
        assert out is sim
        assert events == []

    def test_nan_fault_degrades_cell(self):
        with inject_fault("isorank", FaultSpec(mode="nan")):
            record = run_cell("isorank", PAIR, "pl", 0)
        assert not record.failed
        assert record.status == "degraded"
        assert any(d["kind"] == "nonfinite_similarity"
                   for d in record.diagnostics)

    def test_nan_fault_fails_cell_under_strict(self):
        with inject_fault("isorank", FaultSpec(mode="nan")):
            record = run_cell("isorank", PAIR, "pl", 0,
                              strict_numerics=True)
        assert record.failed
        assert record.status == "failed"
        assert "NumericsError" in record.error
        # the watchdog's trail survives into the failed record
        assert any(d["kind"] == "nonfinite_similarity"
                   for d in record.diagnostics)


class TestAssignmentFallback:
    def test_jv_failure_falls_back_to_greedy_with_diagnostic(self, monkeypatch):
        from repro.assignment import base as assignment_base
        from repro.assignment.base import extract_alignment
        from repro.exceptions import AssignmentError

        def _infeasible(similarity):
            raise AssignmentError("injected: problem infeasible")

        monkeypatch.setattr(assignment_base, "jonker_volgenant", _infeasible)
        sim = np.array([[0.9, 0.1], [0.2, 0.8]])
        with capture_diagnostics() as events:
            mapping = extract_alignment(sim, method="jv")
        assert sorted(mapping.tolist()) == [0, 1]
        assert any(e.kind == "lap_infeasible" and e.fallback_used == "sg"
                   for e in events)

    def test_nonfinite_input_still_raises(self, monkeypatch):
        from repro.assignment import base as assignment_base
        from repro.assignment.base import extract_alignment
        from repro.exceptions import AssignmentError

        def _infeasible(similarity):
            raise AssignmentError("injected: problem infeasible")

        monkeypatch.setattr(assignment_base, "jonker_volgenant", _infeasible)
        sim = np.array([[np.nan, 0.1], [0.2, 0.8]])
        with capture_diagnostics() as events:
            with pytest.raises(AssignmentError):
                extract_alignment(sim, method="jv")
        # greedy must not mask a caller bug: no fallback diagnostic
        assert not any(e.kind == "lap_infeasible" for e in events)


class TestRecordStatus:
    def test_status_taxonomy(self):
        base = dict(algorithm="a", dataset="d", noise_type="one-way",
                    noise_level=0.0, repetition=0, assignment="jv",
                    similarity_time=0.0, assignment_time=0.0)
        clean = RunRecord(**base, measures={"accuracy": 1.0})
        degraded = RunRecord(**base, measures={"accuracy": 0.5},
                             diagnostics=[{"stage": "watchdog",
                                           "kind": "nonfinite_similarity",
                                           "message": "m",
                                           "fallback_used": "sanitized"}])
        failed = RunRecord(**base, measures={}, failed=True, error="X: boom")
        assert (clean.status, degraded.status, failed.status) == \
            ("clean", "degraded", "failed")

    def test_record_dict_round_trip_keeps_diagnostics(self):
        record = RunRecord(
            algorithm="a", dataset="d", noise_type="one-way",
            noise_level=0.0, repetition=0, assignment="jv",
            similarity_time=0.0, assignment_time=0.0,
            measures={"accuracy": 0.5},
            diagnostics=[{"stage": "preflight", "kind": "disconnected_input",
                          "message": "m",
                          "fallback_used": "largest_connected_component"}],
        )
        back = RunRecord.from_dict(record.to_dict())
        assert back.diagnostics == record.diagnostics
        assert back.status == "degraded"


SWEEP_CONFIG = dict(
    name="degradation-sweep",
    algorithms=["isorank", "grasp"],
    noise_types=("one-way",),
    noise_levels=(0.0, 0.02),
    repetitions=1,
    seed=13,
)

GRAPHS = {"connected": CONNECTED, "split": TWO_TRIANGLES}


class TestSweepAcceptance:
    def test_sweep_with_disconnected_graph_and_nan_fault(self, tmp_path):
        """The headline acceptance test: nothing escapes, everything is
        classified, and the journal round-trips the classification."""
        journal_path = tmp_path / "sweep.jsonl"
        config = ExperimentConfig(**SWEEP_CONFIG)
        with inject_fault("isorank", FaultSpec(mode="nan", on_call=1)):
            table = run_experiment(config, GRAPHS, journal=str(journal_path))
        assert len(table) == 8  # 2 datasets x 2 levels x 2 algorithms

        statuses = {r.status for r in table.records}
        assert "clean" in statuses
        assert "degraded" in statuses
        # grasp on the split dataset degrades via preflight on every cell
        for r in table.records:
            if r.algorithm == "grasp" and r.dataset == "split":
                assert r.status == "degraded"
                assert any(d["kind"] == "disconnected_input"
                           for d in r.diagnostics)
        # the nan fault degraded exactly one isorank cell via the watchdog
        poisoned = [r for r in table.records
                    if any(d["kind"] == "nonfinite_similarity"
                           for d in r.diagnostics)]
        assert len(poisoned) == 1
        assert poisoned[0].algorithm == "isorank"

        # journal round-trip preserves the full classification
        reloaded = RunJournal(journal_path,
                              fingerprint=config_fingerprint(config))
        assert len(reloaded) == 8
        by_status = {}
        for r in reloaded.records:
            by_status.setdefault(r.status, []).append(r)
        assert {r.status for r in table.records} == set(by_status)
        def canonical_diags(records):
            # json round-trips sort dict keys; compare canonical forms
            return sorted(
                (r.algorithm, r.dataset, round(r.noise_level, 6),
                 json.dumps(r.diagnostics, sort_keys=True))
                for r in records)

        assert canonical_diags(reloaded.records) == \
            canonical_diags(table.records)

    def test_strict_numerics_changes_fingerprint(self):
        default = ExperimentConfig(**SWEEP_CONFIG)
        strict = ExperimentConfig(strict_numerics=True, **SWEEP_CONFIG)
        assert config_fingerprint(default) != config_fingerprint(strict)

    def test_strict_sweep_fails_instead_of_degrading(self):
        config = ExperimentConfig(strict_numerics=True, **SWEEP_CONFIG)
        with inject_fault("isorank", FaultSpec(mode="nan", on_call=1)):
            table = run_experiment(config, {"connected": CONNECTED})
        failed = [r for r in table.records if r.failed]
        assert len(failed) == 1
        assert "NumericsError" in failed[0].error

    def test_serial_and_parallel_diagnostics_identical(self):
        def canonical(table):
            return sorted(
                (r.algorithm, r.dataset, round(r.noise_level, 6),
                 r.repetition, r.status, str(r.diagnostics))
                for r in table.records)

        serial = run_experiment(ExperimentConfig(**SWEEP_CONFIG), GRAPHS)
        parallel = run_experiment(
            ExperimentConfig(workers=2, **SWEEP_CONFIG), GRAPHS)
        assert canonical(serial) == canonical(parallel)
        assert any(r.status == "degraded" for r in serial.records)


class TestReporting:
    def _table(self):
        return run_experiment(ExperimentConfig(**SWEEP_CONFIG), GRAPHS)

    def test_status_counts(self):
        table = self._table()
        counts = table.status_counts(by="algorithm")
        assert set(counts) == {"isorank", "grasp"}
        for c in counts.values():
            assert set(c) == {"clean", "degraded", "failed"}
            assert sum(c.values()) == 4
        assert counts["grasp"]["degraded"] == 2  # split dataset cells

    def test_diagnostic_counts(self):
        table = self._table()
        counts = table.diagnostic_counts(by="algorithm")
        assert counts.get("grasp", {}).get("preflight/disconnected_input") == 4

    def test_markdown_report_degradation_section(self):
        table = self._table()
        report = markdown_report(table, title="degradation")
        assert "## degradation summary" in report
        assert "degraded" in report
        assert "preflight/disconnected_input" in report

    def test_csv_carries_status_and_diagnostics(self, tmp_path):
        table = self._table()
        path = tmp_path / "out.csv"
        table.to_csv(path)
        text = path.read_text()
        header = text.splitlines()[0]
        assert "status" in header
        assert "diagnostics" in header
        assert "degraded" in text
        assert "preflight/disconnected_input" in text
