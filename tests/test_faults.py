"""Fault-injection suite: the sweep survives every induced failure mode.

Acceptance: with faults injected into a registered algorithm, a sweep
completes end-to-end with correct failed-record accounting under each
mode — raise, hang-past-timeout, and over-budget allocation.
"""

import numpy as np
import pytest

from repro.algorithms.base import ALGORITHM_REGISTRY
from repro.exceptions import ConvergenceError, ExperimentError
from repro.faults import FaultSpec, inject_fault
from repro.graphs import powerlaw_cluster_graph
from repro.harness import (
    CellBudget,
    ExperimentConfig,
    RetryPolicy,
    run_cell,
    run_cell_with_budget,
    run_experiment,
)
from repro.noise import make_pair

GRAPH = powerlaw_cluster_graph(40, 3, 0.3, seed=41)
PAIR = make_pair(GRAPH, "one-way", 0.0, seed=42)

GIB = 2 ** 30


class TestInjectFault:
    def test_raise_mode(self):
        with inject_fault("isorank", FaultSpec(mode="raise")):
            record = run_cell("isorank", PAIR, "pl", 0)
        assert record.failed
        assert "ConvergenceError" in record.error

    def test_registry_restored_after_exit(self):
        original = ALGORITHM_REGISTRY["isorank"]
        with inject_fault("isorank", FaultSpec(mode="raise")):
            assert ALGORITHM_REGISTRY["isorank"] is not original
        assert ALGORITHM_REGISTRY["isorank"] is original
        assert not run_cell("isorank", PAIR, "pl", 0).failed

    def test_registry_restored_on_error(self):
        original = ALGORITHM_REGISTRY["isorank"]
        with pytest.raises(RuntimeError):
            with inject_fault("isorank", FaultSpec(mode="raise")):
                raise RuntimeError("test body blew up")
        assert ALGORITHM_REGISTRY["isorank"] is original

    def test_nth_call_semantics(self):
        spec = FaultSpec(mode="raise", on_call=2)
        with inject_fault("isorank", spec) as handle:
            first = run_cell("isorank", PAIR, "pl", 0)
            second = run_cell("isorank", PAIR, "pl", 1)
            third = run_cell("isorank", PAIR, "pl", 2)
            assert handle.calls == 3
        assert not first.failed
        assert second.failed
        assert not third.failed

    def test_every_call_semantics(self):
        with inject_fault("isorank", FaultSpec(mode="raise", on_call=None)):
            assert run_cell("isorank", PAIR, "pl", 0).failed
            assert run_cell("isorank", PAIR, "pl", 1).failed

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ExperimentError):
            with inject_fault("no-such", FaultSpec()):
                pass

    def test_bad_specs_rejected(self):
        with pytest.raises(ExperimentError):
            FaultSpec(mode="explode")
        with pytest.raises(ExperimentError):
            FaultSpec(on_call=0)


class TestSweepSurvivesRaise:
    def test_raising_cells_become_failed_records(self):
        config = ExperimentConfig(
            name="faulty", algorithms=["isorank", "nsd"],
            noise_levels=(0.0, 0.02), repetitions=1,
        )
        with inject_fault("isorank", FaultSpec(mode="raise", on_call=None)):
            table = run_experiment(config, {"pl": GRAPH})
        assert len(table) == 4  # the sweep completed every cell
        assert all(r.failed for r in table.filter(algorithm="isorank"))
        assert all(not r.failed for r in table.filter(algorithm="nsd"))

    def test_transient_fault_healed_by_retry(self):
        config = ExperimentConfig(
            name="healed", algorithms=["isorank"],
            noise_levels=(0.0,), repetitions=1,
            retry_policy=RetryPolicy(max_attempts=2, backoff_seconds=0.0),
        )
        spec = FaultSpec(mode="raise", on_call=1,
                         exc=np.linalg.LinAlgError("injected"))
        with inject_fault("isorank", spec):
            table = run_experiment(config, {"pl": GRAPH})
        (record,) = table.records
        assert not record.failed  # second attempt succeeded
        assert record.attempts == 2

    def test_nontransient_fault_not_retried(self):
        config = ExperimentConfig(
            name="fatal", algorithms=["isorank"],
            noise_levels=(0.0,), repetitions=1,
            retry_policy=RetryPolicy(max_attempts=3),
        )
        spec = FaultSpec(mode="raise", on_call=None,
                         exc=MemoryError("injected blowout"))
        with inject_fault("isorank", spec):
            table = run_experiment(config, {"pl": GRAPH})
        (record,) = table.records
        assert record.failed
        assert record.attempts == 1


class TestSweepSurvivesHang:
    def test_hang_killed_at_deadline(self):
        """A hanging cell trips the wall-clock budget, not the suite."""
        budget = CellBudget(time_seconds=1.5, grace_seconds=0.5)
        with inject_fault("isorank", FaultSpec(mode="hang", on_call=None)):
            record = run_cell_with_budget("isorank", PAIR, "pl", 0, budget)
        assert record.failed
        assert "timeout" in record.error

    def test_sweep_continues_past_hanging_algorithm(self):
        config = ExperimentConfig(
            name="hang", algorithms=["isorank", "nsd"],
            noise_levels=(0.0,), repetitions=1,
            budget=CellBudget(time_seconds=1.5, grace_seconds=0.5),
        )
        with inject_fault("isorank", FaultSpec(mode="hang", on_call=None)):
            table = run_experiment(config, {"pl": GRAPH})
        assert len(table) == 2
        (hung,) = table.filter(algorithm="isorank").records
        (healthy,) = table.filter(algorithm="nsd").records
        assert hung.failed and "timeout" in hung.error
        assert not healthy.failed


class TestSweepSurvivesAllocation:
    def test_unbounded_allocation_hits_memory_budget(self):
        budget = CellBudget(time_seconds=120, memory_bytes=1 * GIB)
        spec = FaultSpec(mode="allocate", on_call=None)
        with inject_fault("isorank", spec):
            record = run_cell_with_budget("isorank", PAIR, "pl", 0, budget)
        assert record.failed
        assert "MemoryError" in record.error or "died" in record.error

    def test_sweep_accounting_with_allocation_fault(self):
        config = ExperimentConfig(
            name="alloc", algorithms=["isorank", "nsd"],
            noise_levels=(0.0,), repetitions=1,
            budget=CellBudget(time_seconds=120, memory_bytes=1 * GIB),
        )
        with inject_fault("isorank", FaultSpec(mode="allocate",
                                               on_call=None)):
            table = run_experiment(config, {"pl": GRAPH})
        assert len(table) == 2
        assert table.filter(algorithm="isorank").records[0].failed
        assert not table.filter(algorithm="nsd").records[0].failed


class TestDegradationFaultModes:
    def test_nan_mode_poisons_similarity(self):
        from repro.faults import _poison_similarity

        poisoned = _poison_similarity(np.ones((4, 4)))
        assert np.isnan(poisoned[0]).all()
        assert np.isfinite(poisoned[1:]).all()

    def test_nan_mode_degrades_cell_not_fails(self):
        with inject_fault("isorank", FaultSpec(mode="nan")):
            record = run_cell("isorank", PAIR, "pl", 0)
        assert not record.failed
        assert record.status == "degraded"
        assert any(d["kind"] == "nonfinite_similarity"
                   for d in record.diagnostics)

    def test_nan_mode_nth_call(self):
        spec = FaultSpec(mode="nan", on_call=2)
        with inject_fault("isorank", spec):
            first = run_cell("isorank", PAIR, "pl", 0)
            second = run_cell("isorank", PAIR, "pl", 1)
        assert first.status == "clean"
        assert second.status == "degraded"

    def test_disconnect_mode_splits_inputs(self):
        from repro.faults import _split_components
        from repro.graphs.operations import number_of_components

        assert number_of_components(_split_components(GRAPH)) >= 2

    def test_disconnect_mode_triggers_preflight(self):
        with inject_fault("grasp", FaultSpec(mode="disconnect")) as handle:
            record = run_cell("grasp", PAIR, "pl", 0)
            assert handle.calls == 1  # counted per align(), not similarity
        assert not record.failed
        assert record.status == "degraded"
        assert any(d["kind"] == "disconnected_input"
                   for d in record.diagnostics)

    def test_disconnect_mode_tolerant_algorithm_runs_clean(self):
        with inject_fault("isorank", FaultSpec(mode="disconnect")):
            record = run_cell("isorank", PAIR, "pl", 0)
        assert not record.failed
        assert not any(d["kind"] == "disconnected_input"
                       for d in record.diagnostics)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ExperimentError):
            FaultSpec(mode="explode")
