"""Golden-trace regression suite: per-algorithm stage structure.

Every algorithm's traced run must produce exactly the span tree and
counter names pinned here — a refactor that silently drops a stage span
or renames a counter breaks these goldens, not a downstream dashboard.

Nothing in this file asserts on real time: structures are compared via
:func:`repro.observability.trace_structure` (timing-free by design) and
the timing checks run under an injected fake monotonic clock
(:func:`repro.observability.trace_clock`), so the suite cannot be
wall-clock flaky.
"""

import pytest

from repro.algorithms import get_algorithm, list_algorithms
from repro.graphs import powerlaw_cluster_graph
from repro.noise import make_pair
from repro.observability import (
    counter_totals,
    trace_clock,
    trace_structure,
    tracing,
)

PAIR = make_pair(powerlaw_cluster_graph(40, 3, 0.3, seed=5), "one-way",
                 0.02, seed=6)

# The default pipeline wrapper (preflight -> similarity -> watchdog ->
# assignment) around an algorithm-specific similarity signature.
def _pipeline(similarity):
    return (
        ("preflight", "ok", (), ()),
        similarity,
        ("watchdog", "ok", (), ()),
        ("assignment", "ok", ("jv_augmenting_steps",), ()),
    )


GOLDEN = {
    "isorank": _pipeline(("similarity", "ok", ("power_iterations",), ())),
    "nsd": _pipeline(("similarity", "ok", ("power_iterations",), ())),
    "lrea": _pipeline(("similarity", "ok", ("factor_iterations",), ())),
    "grasp": _pipeline(("similarity", "ok", (), (
        ("spectral", "ok", ("eigensolver_calls",), ()),
        ("base_alignment", "ok", (), ()),
    ))),
    "regal": _pipeline(("similarity", "ok", (), (
        ("embedding", "ok", (), ()),
    ))),
    "cone": _pipeline(("similarity", "ok", (), (
        ("embedding", "ok", (), ()),
        ("initialization", "ok",
         ("fallback_activations", "sinkhorn_iterations"), ()),
        ("refinement", "ok",
         ("fallback_activations", "sinkhorn_iterations"), ()),
    ))),
    # GRAAL's native align() has no preflight/watchdog stages.
    "graal": (
        ("similarity", "ok", (), (("graphlets", "ok", (), ()),)),
        ("assignment", "ok", (), ()),
    ),
}

# The slower GW-family algorithms get structure checks but are excluded
# from the double-run determinism matrix to keep the suite fast.
GW_GOLDEN = {
    "gwl": _pipeline(("similarity", "ok", (), (
        ("gw_solve", "ok",
         ("fallback_activations", "gw_outer_iterations",
          "sinkhorn_iterations"), ()),
        ("gw_solve", "ok",
         ("fallback_activations", "gw_outer_iterations",
          "sinkhorn_iterations"), ()),
    ))),
    # S-GWL emits a *sparse* similarity; the dense JV back-end densifies
    # it, which the sparse-first audit records as assignment_densified.
    "s-gwl": (
        ("preflight", "ok", (), ()),
        ("similarity", "ok",
         ("fallback_activations", "gw_leaf_solves", "gw_outer_iterations",
          "sinkhorn_iterations"), ()),
        ("watchdog", "ok", (), ()),
        ("assignment", "ok",
         ("assignment_densified", "jv_augmenting_steps"), ()),
    ),
}


def _traced_run(name, clock=None):
    algorithm = get_algorithm(name)
    if clock is not None:
        with trace_clock(clock), tracing(True):
            result = algorithm.align(PAIR.source, PAIR.target, seed=0)
    else:
        with tracing(True):
            result = algorithm.align(PAIR.source, PAIR.target, seed=0)
    assert result.trace is not None
    return result.trace


class FakeClock:
    """Monotonic fake: every read advances by a fixed step."""

    def __init__(self, step=0.001):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestGoldenStructures:
    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_structure_matches_golden(self, name):
        assert trace_structure(_traced_run(name)) == GOLDEN[name]

    @pytest.mark.parametrize("name", sorted(GW_GOLDEN))
    def test_gw_structure_matches_golden(self, name):
        assert trace_structure(_traced_run(name)) == GW_GOLDEN[name]

    def test_goldens_cover_every_registered_algorithm(self):
        assert set(GOLDEN) | set(GW_GOLDEN) == set(list_algorithms())


class TestDeterminism:
    @pytest.mark.parametrize("name", ["isorank", "nsd", "grasp", "lrea"])
    def test_counters_identical_across_runs(self, name):
        first = counter_totals(_traced_run(name))
        second = counter_totals(_traced_run(name))
        assert first == second
        assert first  # a traced run emits at least one counter

    @pytest.mark.parametrize("name", ["isorank", "grasp"])
    def test_fake_clock_times_identical_across_runs(self, name):
        """Under an injected clock the recorded times depend only on the
        number and order of clock reads — i.e. on the trace structure —
        so two runs must agree exactly, proving nothing times off the
        real wall clock while the fake is installed."""
        first = _traced_run(name, clock=FakeClock())
        second = _traced_run(name, clock=FakeClock())

        def times(payload):
            def walk(entry):
                yield (entry["stage"], entry["wall_time"], entry["cpu_time"])
                for child in entry["children"]:
                    yield from walk(child)
            return [item for root in payload["spans"]
                    for item in walk(root)]

        assert times(first) == times(second)
        assert all(wall > 0 for _stage, wall, _cpu in times(first))


class TestCachedGoldenStructures:
    """The artifact cache only *adds* ``cache_*`` counters inside the
    spans whose producers it wraps: stripping them from a cold cached
    run recovers the uncached golden exactly, and the cache toggle
    without an active scope changes nothing at all."""

    @staticmethod
    def _strip_cache(structure):
        def strip(entry):
            stage, status, counters, children = entry
            return (
                stage, status,
                tuple(c for c in counters if not c.startswith("cache_")),
                tuple(strip(child) for child in children),
            )
        return tuple(strip(entry) for entry in structure)

    @staticmethod
    def _counter_names(structure):
        names = set()

        def walk(entry):
            names.update(entry[2])
            for child in entry[3]:
                walk(child)

        for entry in structure:
            walk(entry)
        return names

    @pytest.mark.parametrize("name", ["isorank", "nsd", "grasp"])
    def test_cold_cached_structure_is_golden_plus_cache_counters(self, name):
        from repro.cache import artifact_cache, caching

        with caching(True), artifact_cache():
            structure = trace_structure(_traced_run(name))
        assert self._strip_cache(structure) == GOLDEN[name]
        counters = self._counter_names(structure)
        assert "cache_misses" in counters  # cold scope: producers ran
        assert "cache_bytes" in counters

    def test_warm_cached_grasp_reports_only_hits(self):
        """A fully warm cell performs zero eigensolves: the producer
        counter disappears from the spectral span and every lookup is a
        hit."""
        from repro.cache import artifact_cache, caching

        with caching(True), artifact_cache():
            _traced_run("grasp")
            structure = trace_structure(_traced_run("grasp"))
        counters = self._counter_names(structure)
        assert "cache_hits" in counters
        assert "cache_misses" not in counters
        assert "eigensolver_calls" not in counters

    def test_toggle_without_scope_leaves_goldens_untouched(self):
        from repro.cache import caching

        with caching(True):
            structure = trace_structure(_traced_run("grasp"))
        assert structure == GOLDEN["grasp"]


class TestGoldenCounterValues:
    def test_isorank_iteration_count_pinned(self):
        """The counter carries the *total* for the run; for a seeded run
        on a fixed pair that total is exact, not approximate."""
        first = counter_totals(_traced_run("isorank"))
        assert first["power_iterations"] >= 1
        assert first["jv_augmenting_steps"] == PAIR.source.num_nodes

    def test_grasp_counts_one_eigensolve_per_graph(self):
        totals = counter_totals(_traced_run("grasp"))
        assert totals["eigensolver_calls"] == 2  # source + target
