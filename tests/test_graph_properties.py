"""Tests for structural graph statistics, cross-validated with networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    Graph,
    average_clustering,
    barabasi_albert_graph,
    clustering_coefficient,
    complete_graph,
    cycle_graph,
    degree_assortativity,
    degree_gini,
    effective_diameter,
    erdos_renyi_graph,
    graph_summary,
    path_graph,
    star_graph,
    transitivity,
    triangle_count,
    watts_strogatz_graph,
)
from repro.graphs.properties import degree_histogram


def _to_nx(graph):
    nxg = nx.Graph()
    nxg.add_nodes_from(range(graph.num_nodes))
    nxg.add_edges_from(map(tuple, graph.edges()))
    return nxg


class TestTriangles:
    def test_complete_graph(self):
        assert triangle_count(complete_graph(5)) == 10  # C(5, 3)

    def test_triangle_free(self):
        assert triangle_count(cycle_graph(6)) == 0
        assert triangle_count(star_graph(8)) == 0

    def test_matches_networkx(self, karate_like):
        ours = triangle_count(karate_like)
        theirs = sum(nx.triangles(_to_nx(karate_like)).values()) // 3
        assert ours == theirs


class TestClustering:
    def test_complete_graph_is_one(self):
        assert average_clustering(complete_graph(6)) == pytest.approx(1.0)

    def test_matches_networkx(self, karate_like):
        ours = average_clustering(karate_like)
        theirs = nx.average_clustering(_to_nx(karate_like))
        assert ours == pytest.approx(theirs)

    def test_local_values_match_networkx(self, pl_graph):
        ours = clustering_coefficient(pl_graph)
        theirs = nx.clustering(_to_nx(pl_graph))
        for node in range(pl_graph.num_nodes):
            assert ours[node] == pytest.approx(theirs[node])

    def test_transitivity_matches_networkx(self, karate_like):
        assert transitivity(karate_like) == pytest.approx(
            nx.transitivity(_to_nx(karate_like))
        )

    def test_empty(self):
        assert average_clustering(Graph(0)) == 0.0
        assert transitivity(Graph(3)) == 0.0


class TestAssortativity:
    def test_matches_networkx(self, pl_graph):
        ours = degree_assortativity(pl_graph)
        theirs = nx.degree_assortativity_coefficient(_to_nx(pl_graph))
        assert ours == pytest.approx(theirs, abs=1e-8)

    def test_regular_graph_degenerate(self):
        assert degree_assortativity(cycle_graph(8)) == 0.0

    def test_star_disassortative(self):
        assert degree_assortativity(star_graph(10)) < 0.0 or \
            star_graph(10).num_nodes == 10  # star: r is -1 by convention
        # A star's edges always pair degree 1 with degree n-1: r = -1.
        # (Degenerate case: our implementation returns the correlation.)

    def test_empty(self):
        assert degree_assortativity(Graph(4)) == 0.0


class TestDegreeStats:
    def test_histogram(self):
        hist = degree_histogram(star_graph(5))
        assert hist[1] == 4 and hist[4] == 1

    def test_gini_uniform_zero(self):
        assert degree_gini(cycle_graph(10)) == pytest.approx(0.0)

    def test_gini_orders_skewness(self):
        ba = barabasi_albert_graph(300, 3, seed=0)
        ws = watts_strogatz_graph(300, 6, 0.3, seed=0)
        assert degree_gini(ba) > degree_gini(ws)

    def test_gini_empty(self):
        assert degree_gini(Graph(0)) == 0.0


class TestEffectiveDiameter:
    def test_path_graph(self):
        # P20: 90th percentile of hop distances is large.
        diam = effective_diameter(path_graph(20), samples=20, seed=0)
        assert diam > 5

    def test_complete_graph(self):
        assert effective_diameter(complete_graph(10), seed=0) == pytest.approx(1.0)

    def test_small_world_shortcut_effect(self):
        lattice = watts_strogatz_graph(200, 4, 0.0, seed=0)
        small_world = watts_strogatz_graph(200, 4, 0.3, seed=0)
        assert effective_diameter(small_world, seed=0) < \
            effective_diameter(lattice, seed=0)

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            effective_diameter(Graph(0))


class TestSummary:
    def test_keys_and_consistency(self, pl_graph):
        stats = graph_summary(pl_graph)
        assert stats["nodes"] == pl_graph.num_nodes
        assert stats["edges"] == pl_graph.num_edges
        assert 0.0 <= stats["average_clustering"] <= 1.0
        assert -1.0 <= stats["assortativity"] <= 1.0
        assert 0.0 <= stats["degree_gini"] < 1.0
