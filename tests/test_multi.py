"""Tests for multiple-network alignment."""

import numpy as np
import pytest

from repro.algorithms import align_multiple
from repro.exceptions import AlgorithmError
from repro.graphs import powerlaw_cluster_graph
from repro.graphs.operations import permute_graph
from repro.measures import accuracy
from repro.noise import make_pair


@pytest.fixture(scope="module")
def three_views():
    """Three isomorphic views of one graph with known correspondences."""
    base = powerlaw_cluster_graph(60, 3, 0.3, seed=51)
    rng = np.random.default_rng(52)
    perms = [np.arange(60), rng.permutation(60), rng.permutation(60)]
    graphs = [permute_graph(base, perm) for perm in perms]
    return graphs, perms


def _truth(perms, i, j):
    """True mapping from view i to view j: perm_j ∘ perm_i^{-1}."""
    inv_i = np.argsort(perms[i])
    return perms[j][inv_i]


class TestStar:
    def test_pairwise_accuracy(self, three_views):
        graphs, perms = three_views
        joint = align_multiple(graphs, method="isorank", strategy="star",
                               seed=0)
        for i in range(3):
            for j in range(3):
                acc = accuracy(joint.pairwise(i, j), _truth(perms, i, j))
                assert acc > 0.8, (i, j, acc)

    def test_identity_pairwise(self, three_views):
        graphs, _perms = three_views
        joint = align_multiple(graphs, method="isorank", seed=0)
        assert np.array_equal(joint.pairwise(1, 1), np.arange(60))

    def test_cycle_consistency_high(self, three_views):
        graphs, _perms = three_views
        joint = align_multiple(graphs, method="isorank", seed=0)
        assert joint.cycle_consistency(1, 2) > 0.8

    def test_reference_choice(self, three_views):
        graphs, perms = three_views
        joint = align_multiple(graphs, method="isorank", reference=2, seed=0)
        assert joint.reference == 2
        acc = accuracy(joint.pairwise(0, 1), _truth(perms, 0, 1))
        assert acc > 0.8


class TestChain:
    def test_temporal_chain(self):
        """Chain strategy on a sequence of progressively noisier snapshots."""
        base = powerlaw_cluster_graph(60, 3, 0.3, seed=53)
        pair1 = make_pair(base, "one-way", 0.01, seed=54)
        pair2 = make_pair(pair1.target, "one-way", 0.01, seed=55)
        graphs = [base, pair1.target, pair2.target]
        joint = align_multiple(graphs, method="isorank", strategy="chain",
                               seed=0)
        # Mapping snapshot 2 back to snapshot 0 composes the two truths.
        truth_2_to_0 = np.argsort(pair1.ground_truth)[
            np.argsort(pair2.ground_truth)
        ]
        acc = accuracy(joint.pairwise(2, 0), truth_2_to_0)
        assert acc > 0.6

    def test_chain_forces_reference_zero(self, three_views):
        graphs, _perms = three_views
        joint = align_multiple(graphs, strategy="chain", method="isorank",
                               seed=0)
        assert joint.reference == 0


class TestValidation:
    def test_needs_two_graphs(self, three_views):
        graphs, _ = three_views
        with pytest.raises(AlgorithmError):
            align_multiple(graphs[:1])

    def test_unknown_strategy(self, three_views):
        graphs, _ = three_views
        with pytest.raises(AlgorithmError):
            align_multiple(graphs, strategy="clique")

    def test_reference_out_of_range(self, three_views):
        graphs, _ = three_views
        with pytest.raises(AlgorithmError):
            align_multiple(graphs, reference=7)

    def test_pairwise_index_validated(self, three_views):
        graphs, _ = three_views
        joint = align_multiple(graphs, method="nsd", seed=0)
        with pytest.raises(AlgorithmError):
            joint.pairwise(0, 9)
