"""Tests for the benchmark suite's shared machinery."""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.helpers import (  # noqa: E402
    ALL_ALGORITHMS,
    budget_failure,
    eligible,
    node_cap,
    run_matrix,
    synthetic_model_graph,
)
from repro.harness import PROFILES  # noqa: E402
from repro.noise import make_pair  # noqa: E402


class TestBudgetEmulation:
    def test_caps_ordered_by_profile(self):
        for algo in ("gwl", "cone", "isorank"):
            assert (node_cap(algo, PROFILES["quick"])
                    <= node_cap(algo, PROFILES["medium"])
                    <= node_cap(algo, PROFILES["full"]))

    def test_eligibility(self):
        quick = PROFILES["quick"]
        assert eligible("nsd", 3000, quick)
        assert not eligible("gwl", 3000, quick)

    def test_unknown_algorithm_unbounded(self):
        assert eligible("degree-baseline", 10 ** 8, PROFILES["quick"])

    def test_budget_failure_record(self):
        graph = synthetic_model_graph("pl", 40, seed=0)
        pair = make_pair(graph, "one-way", 0.0, seed=1)
        record = budget_failure("gwl", pair, "test", 0, "jv")
        assert record.failed
        assert "budget" in record.error


class TestSyntheticModels:
    @pytest.mark.parametrize("model", ["er", "ba", "ws", "nw", "pl"])
    def test_models_generate(self, model):
        graph = synthetic_model_graph(model, 120, seed=0)
        assert graph.num_nodes == 120
        assert graph.num_edges > 0

    def test_er_degree_matches_paper(self):
        """ER keeps the paper's average degree (p=0.009 at n=1133 ~ 10.2)."""
        graph = synthetic_model_graph("er", 1133, seed=0)
        assert abs(graph.average_degree - 10.2) < 1.0

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            synthetic_model_graph("hyperbolic", 100)


class TestReporting:
    def test_emit_prints_and_persists(self, tmp_path, capsys):
        from benchmarks.helpers import emit
        text = emit(tmp_path, "demo", "section one", "section two")
        assert "section one" in text
        assert (tmp_path / "demo.txt").read_text().count("section") == 2
        assert "demo" in capsys.readouterr().out

    def test_figure_report_sections(self):
        from benchmarks.helpers import figure_report
        from repro.harness import ResultTable, RunRecord
        records = [
            RunRecord(algorithm="a", dataset="d", noise_type="one-way",
                      noise_level=level, repetition=0, assignment="jv",
                      measures={"accuracy": 1.0 - level}, similarity_time=0,
                      assignment_time=0)
            for level in (0.0, 0.05)
        ]
        sections = figure_report(ResultTable(records),
                                 measures=("accuracy",))
        assert any("accuracy / one-way" in s for s in sections)
        assert any("legend" in s for s in sections)  # the ascii chart


class TestRunMatrix:
    def test_budget_cells_marked_failed(self):
        quick = PROFILES["quick"]
        graph = synthetic_model_graph("pl", 600, seed=0)  # above gwl's cap
        pair = make_pair(graph, "one-way", 0.0, seed=1)
        table = run_matrix([(pair, 0)], ("gwl", "nsd"), quick,
                           measures=("accuracy",))
        gwl = table.filter(algorithm="gwl").records
        nsd = table.filter(algorithm="nsd").records
        assert gwl[0].failed and not nsd[0].failed

    def test_bare_pairs_numbered(self):
        quick = PROFILES["quick"]
        graph = synthetic_model_graph("pl", 50, seed=0)
        pairs = [make_pair(graph, "one-way", 0.0, seed=s) for s in (1, 2)]
        table = run_matrix(pairs, ("nsd",), quick, measures=("accuracy",))
        assert {r.repetition for r in table.records} == {0, 1}
