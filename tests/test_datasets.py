"""Tests for the dataset registry, stand-ins, and temporal versions."""

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    dataset_info,
    list_datasets,
    load_dataset,
    temporal_pair,
    temporal_versions,
)
from repro.exceptions import DatasetError
from repro.graphs import largest_connected_component, number_of_components


class TestRegistry:
    def test_sixteen_datasets(self):
        assert len(list_datasets()) == 16

    def test_table2_statistics_recorded(self):
        arenas = dataset_info("arenas")
        assert arenas.nodes == 1133
        assert arenas.edges == 5451
        assert arenas.kind == "communication"

    def test_case_insensitive(self):
        assert dataset_info("ARENAS").name == "arenas"

    def test_unknown_rejected(self):
        with pytest.raises(DatasetError):
            dataset_info("imaginary-net")

    def test_average_degree(self):
        assert dataset_info("facebook").average_degree == pytest.approx(43.7, abs=0.1)


class TestStandIns:
    @pytest.mark.parametrize("name", ["arenas", "inf-power", "ca-netscience",
                                      "highschool", "bio-celegans"])
    def test_degree_matched(self, name):
        spec = dataset_info(name)
        g = load_dataset(name, scale=0.3, seed=0)
        assert abs(g.average_degree - spec.average_degree) < max(
            0.35 * spec.average_degree, 1.5
        )

    def test_scale_shrinks(self):
        big = load_dataset("arenas", scale=0.5, seed=0)
        small = load_dataset("arenas", scale=0.1, seed=0)
        assert small.num_nodes < big.num_nodes

    def test_full_scale_node_count(self):
        g = load_dataset("arenas", scale=1.0, seed=0)
        assert g.num_nodes == 1133

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            load_dataset("arenas", scale=0.0)
        with pytest.raises(DatasetError):
            load_dataset("arenas", scale=2.0)

    def test_left_out_nodes_disconnected(self):
        """Datasets with ℓ > 0 must come with satellite components (they
        drive GRASP's documented failures)."""
        g = load_dataset("inf-euroroad", scale=0.5, seed=0)
        assert number_of_components(g) > 1
        _lcc, nodes = largest_connected_component(g)
        spec = dataset_info("inf-euroroad")
        expected_out = int(round(spec.left_out * 0.5))
        assert g.num_nodes - nodes.size == pytest.approx(expected_out, abs=3)

    def test_connected_when_no_left_out(self):
        g = load_dataset("arenas", scale=0.2, seed=0)
        assert number_of_components(g) == 1

    def test_reproducible(self):
        assert load_dataset("voles", scale=0.3, seed=5) == load_dataset(
            "voles", scale=0.3, seed=5
        )


class TestTemporal:
    def test_versions_shrink(self):
        base, versions = temporal_versions(
            "voles", (0.8, 0.9, 0.99), scale=0.4, seed=0
        )
        sizes = [v.num_edges for v in versions]
        assert sizes[0] < sizes[1] < sizes[2] <= base.num_edges
        assert all(v.num_nodes == base.num_nodes for v in versions)

    def test_versions_are_subsets_for_proximity(self):
        base, versions = temporal_versions("highschool", (0.85,), scale=0.5, seed=0)
        assert versions[0].edge_set() <= base.edge_set()

    def test_multimagna_gains_and_losses(self):
        base, (variant,) = temporal_versions("multimagna", (0.85,), scale=0.4, seed=0)
        gained = variant.edge_set() - base.edge_set()
        lost = base.edge_set() - variant.edge_set()
        assert gained and lost

    def test_correlated_noise(self):
        """Persistent edges must survive in (almost) every snapshot."""
        base, versions = temporal_versions(
            "voles", (0.8, 0.8, 0.8), scale=0.4, seed=0
        )
        surviving = set.intersection(*(v.edge_set() for v in versions))
        # With independent uniform sampling the triple intersection would be
        # ~51% of edges; persistence-weighted sampling keeps notably more.
        assert len(surviving) > 0.55 * base.num_edges

    def test_pair_construction(self):
        pair = temporal_pair("voles", 0.85, scale=0.4, seed=1)
        assert pair.noise_type == "real"
        assert pair.noise_level == pytest.approx(0.15)
        assert pair.source.num_nodes == pair.target.num_nodes

    def test_non_temporal_rejected(self):
        with pytest.raises(DatasetError):
            temporal_versions("arenas")

    def test_bad_fraction_rejected(self):
        with pytest.raises(DatasetError):
            temporal_versions("voles", (1.5,))
