"""Per-algorithm behavior tests: the traits the paper attributes to each."""

import numpy as np
import pytest
from scipy import sparse

from repro.algorithms import (
    Cone,
    GWL,
    Graal,
    Grasp,
    IsoRank,
    LREA,
    NSD,
    Regal,
    SGWL,
)
from repro.exceptions import AlgorithmError
from repro.graphs import (
    barabasi_albert_graph,
    powerlaw_cluster_graph,
    random_regular_graph,
)
from repro.measures import accuracy
from repro.noise import make_pair
from repro.util import degree_prior

PL = powerlaw_cluster_graph(80, 3, 0.3, seed=21)
PL_PAIR = make_pair(PL, "one-way", 0.02, seed=22)


class TestIsoRank:
    def test_degree_prior_beats_uniform(self):
        """The paper's §6.1 weight schema: the degree prior is the difference
        between IsoRank being competitive and being mediocre."""
        with_prior = IsoRank(prior="degree").align(
            PL_PAIR.source, PL_PAIR.target, seed=0
        )
        without = IsoRank(prior="uniform").align(
            PL_PAIR.source, PL_PAIR.target, seed=0
        )
        acc_with = accuracy(with_prior.mapping, PL_PAIR.ground_truth)
        acc_without = accuracy(without.mapping, PL_PAIR.ground_truth)
        assert acc_with > acc_without

    def test_alpha_bounds_validated(self):
        with pytest.raises(AlgorithmError):
            IsoRank(alpha=1.5)

    def test_prior_validated(self):
        with pytest.raises(AlgorithmError):
            IsoRank(prior="blast")

    def test_similarity_normalized(self):
        sim = IsoRank().similarity(PL_PAIR.source, PL_PAIR.target)
        assert sim.sum() == pytest.approx(1.0, rel=1e-3)

    def test_degree_prior_helper(self):
        sim = degree_prior(np.array([4, 0]), np.array([4, 2, 0]))
        assert sim[0, 0] == 1.0
        assert sim[0, 1] == pytest.approx(0.5)
        assert sim[1, 2] == 1.0  # both isolated -> perfectly similar
        assert sim[1, 0] == 0.0


class TestNSD:
    def test_converges_toward_isorank(self):
        """NSD is an unrolled IsoRank: with the same (degree) prior and many
        iterations the two similarity matrices rank pairs consistently."""
        iso = IsoRank(prior="degree", iterations=30).similarity(
            PL_PAIR.source, PL_PAIR.target
        )
        nsd = NSD(prior="degree", iterations=30, components=10).similarity(
            PL_PAIR.source, PL_PAIR.target
        )
        # Spearman-like check: top-scoring target per source agrees often.
        agree = np.mean(np.argmax(iso, axis=1) == np.argmax(nsd, axis=1))
        assert agree > 0.5

    def test_uniform_prior_runs_without_preprocessing(self):
        result = NSD(prior="uniform").align(PL_PAIR.source, PL_PAIR.target)
        assert accuracy(result.mapping, PL_PAIR.ground_truth) > 0.3

    def test_parameter_validation(self):
        with pytest.raises(AlgorithmError):
            NSD(alpha=-0.1)
        with pytest.raises(AlgorithmError):
            NSD(iterations=0)
        with pytest.raises(AlgorithmError):
            NSD(prior="blast")


class TestLREA:
    def test_perfect_on_isomorphic(self):
        """The paper: LREA 'consistently finds the correct alignment on
        graphs with no noise'."""
        clean = make_pair(PL, "one-way", 0.0, seed=1)
        result = LREA().align(clean.source, clean.target, assignment="mwm")
        assert accuracy(result.mapping, clean.ground_truth) > 0.9

    def test_collapses_under_noise(self):
        """And drops sharply with only a few percent noise."""
        noisy = make_pair(PL, "one-way", 0.05, seed=2)
        result = LREA().align(noisy.source, noisy.target, assignment="mwm")
        clean = make_pair(PL, "one-way", 0.0, seed=2)
        base = LREA().align(clean.source, clean.target, assignment="mwm")
        assert accuracy(result.mapping, noisy.ground_truth) < accuracy(
            base.mapping, clean.ground_truth
        )

    def test_candidate_matchings_sparse(self):
        cands = LREA().candidate_matchings(PL_PAIR.source, PL_PAIR.target)
        assert sparse.issparse(cands)
        n = PL_PAIR.source.num_nodes
        assert cands.nnz < n * n / 2  # genuinely sparse
        assert np.all(cands.data > 0)

    def test_reward_ordering_validated(self):
        with pytest.raises(AlgorithmError):
            LREA(s_overlap=0.5, s_noninformative=1.0, s_conflict=0.1)


class TestRegal:
    def test_landmark_override(self):
        algo = Regal(num_landmarks=12)
        sim = algo.similarity(PL_PAIR.source, PL_PAIR.target, seed=0)
        assert sim.shape == (80, 80)

    def test_embeddings_joint_space(self):
        emb_a, emb_b = Regal().embeddings(PL_PAIR.source, PL_PAIR.target, seed=0)
        assert emb_a.shape[1] == emb_b.shape[1]

    def test_max_hops_validated(self):
        with pytest.raises(AlgorithmError):
            Regal(max_hops=0)


class TestGWL:
    def test_good_on_powerlaw_bad_on_regular(self):
        """The paper's headline GWL finding: it only discriminates nodes when
        the degree distribution does."""
        ba = barabasi_albert_graph(70, 3, seed=3)
        ba_pair = make_pair(ba, "one-way", 0.0, seed=4)
        reg = random_regular_graph(70, 6, seed=3)
        reg_pair = make_pair(reg, "one-way", 0.0, seed=4)
        algo = GWL(epochs=1)
        ba_acc = accuracy(
            algo.align(ba_pair.source, ba_pair.target, seed=0).mapping,
            ba_pair.ground_truth,
        )
        reg_acc = accuracy(
            algo.align(reg_pair.source, reg_pair.target, seed=0).mapping,
            reg_pair.ground_truth,
        )
        assert ba_acc > 0.8
        assert reg_acc < 0.3

    def test_plan_is_distribution(self):
        plan = GWL(epochs=1).similarity(PL_PAIR.source, PL_PAIR.target, seed=0)
        assert plan.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(plan >= 0)

    def test_epochs_validated(self):
        with pytest.raises(AlgorithmError):
            GWL(epochs=0)


class TestSGWL:
    def test_leaf_solve_matches_small_graphs(self):
        result = SGWL(leaf_size=256).align(PL_PAIR.source, PL_PAIR.target, seed=0)
        assert accuracy(result.mapping, PL_PAIR.ground_truth) > 0.7

    def test_recursive_path_runs(self):
        """Force partitioning by setting leaf_size below the graph size."""
        algo = SGWL(leaf_size=40, partitions=2)
        result = algo.align(PL_PAIR.source, PL_PAIR.target, seed=0)
        assert result.mapping.shape == (80,)
        # Block similarity matrix is sparse.
        assert sparse.issparse(result.similarity)

    def test_parameter_validation(self):
        with pytest.raises(AlgorithmError):
            SGWL(partitions=1)
        with pytest.raises(AlgorithmError):
            SGWL(leaf_size=1)


class TestCone:
    def test_structural_init_beats_frank_wolfe_on_er(self):
        """The ablation the module docstring documents."""
        from repro.graphs import erdos_renyi_graph
        g = erdos_renyi_graph(70, 0.12, seed=5)
        pair = make_pair(g, "one-way", 0.01, seed=6)
        struct = Cone(init="structural").align(pair.source, pair.target, seed=0)
        fw = Cone(init="frank-wolfe").align(pair.source, pair.target, seed=0)
        acc_struct = accuracy(struct.mapping, pair.ground_truth)
        acc_fw = accuracy(fw.mapping, pair.ground_truth)
        assert acc_struct >= acc_fw
        assert acc_struct > 0.7

    def test_similarity_in_unit_interval(self):
        sim = Cone().similarity(PL_PAIR.source, PL_PAIR.target, seed=0)
        assert np.all(sim > 0) and np.all(sim <= 1.0)

    def test_invalid_init_rejected(self):
        with pytest.raises(AlgorithmError):
            Cone(init="random")


class TestGrasp:
    def test_near_perfect_no_noise(self):
        clean = make_pair(PL, "one-way", 0.0, seed=7)
        result = Grasp().align(clean.source, clean.target)
        assert accuracy(result.mapping, clean.ground_truth) > 0.85

    def test_disconnection_hurts(self):
        """The paper: GRASP 'falters on graphs with several connected
        components'."""
        from repro.graphs import Graph
        connected = powerlaw_cluster_graph(60, 3, 0.3, seed=8)
        pair_c = make_pair(connected, "one-way", 0.0, seed=9)
        acc_connected = accuracy(
            Grasp().align(pair_c.source, pair_c.target).mapping,
            pair_c.ground_truth,
        )
        # Two disjoint copies of a 30-node graph: heavy eigenvalue degeneracy.
        half = powerlaw_cluster_graph(30, 3, 0.3, seed=8)
        edges = np.vstack([half.edges(), half.edges() + 30])
        disconnected = Graph(60, edges)
        pair_d = make_pair(disconnected, "one-way", 0.0, seed=9)
        acc_disconnected = accuracy(
            Grasp().align(pair_d.source, pair_d.target).mapping,
            pair_d.ground_truth,
        )
        assert acc_connected > acc_disconnected

    def test_k_clipped_to_graph_size(self):
        small = powerlaw_cluster_graph(12, 2, 0.3, seed=10)
        pair = make_pair(small, "one-way", 0.0, seed=11)
        result = Grasp(k=50).align(pair.source, pair.target)
        assert result.mapping.shape == (12,)

    def test_params_validated(self):
        with pytest.raises(AlgorithmError):
            Grasp(k=0)
        with pytest.raises(AlgorithmError):
            Grasp(q=0)


class TestGraal:
    def test_native_alignment_default(self):
        result = Graal().align(PL_PAIR.source, PL_PAIR.target)
        assert result.assignment == "native"
        assert accuracy(result.mapping, PL_PAIR.ground_truth) > 0.7

    def test_standard_backend_available(self):
        result = Graal().align(PL_PAIR.source, PL_PAIR.target, assignment="jv")
        assert result.assignment == "jv"

    def test_cost_matrix_range(self):
        cost = Graal().cost_matrix(PL_PAIR.source, PL_PAIR.target)
        assert np.all(cost >= 0.0) and np.all(cost <= 2.0)

    def test_native_mapping_one_to_one(self):
        result = Graal().align(PL_PAIR.source, PL_PAIR.target)
        matched = result.mapping[result.mapping >= 0]
        assert len(set(matched.tolist())) == len(matched)

    def test_alpha_validated(self):
        with pytest.raises(AlgorithmError):
            Graal(alpha=2.0)
