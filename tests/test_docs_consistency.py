"""Documentation consistency: what the docs reference must exist."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


class TestDesignDocument:
    def test_bench_files_exist(self):
        """Every bench target named in DESIGN.md's experiment index exists."""
        text = (ROOT / "DESIGN.md").read_text()
        referenced = set(re.findall(r"benchmarks/(bench_\w+\.py)", text))
        assert referenced, "DESIGN.md must reference bench files"
        for name in referenced:
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_every_bench_in_design(self):
        """Conversely, every bench file is documented in DESIGN.md."""
        text = (ROOT / "DESIGN.md").read_text()
        for path in (ROOT / "benchmarks").glob("bench_*.py"):
            assert path.name in text, f"{path.name} missing from DESIGN.md"

    def test_paper_confirmation_present(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "matches the claimed paper" in text


class TestReadme:
    def test_examples_exist(self):
        text = (ROOT / "README.md").read_text()
        referenced = set(re.findall(r"`(\w+\.py)`", text))
        for name in referenced:
            assert (ROOT / "examples" / name).exists(), name

    def test_algorithm_modules_exist(self):
        text = (ROOT / "README.md").read_text()
        modules = set(re.findall(r"`repro\.algorithms\.(\w+)`", text))
        assert modules
        for module in modules:
            assert (ROOT / "src" / "repro" / "algorithms"
                    / f"{module}.py").exists(), module

    def test_cli_commands_registered(self):
        from repro.cli import build_parser
        text = (ROOT / "README.md").read_text()
        used = set(re.findall(r"python -m repro (\w+)", text))
        parser = build_parser()
        # Extract subcommand names from the parser.
        subactions = [
            action for action in parser._actions
            if hasattr(action, "choices") and action.choices
        ]
        known = set(subactions[0].choices)
        assert used <= known, used - known


class TestExperimentsDocument:
    def test_references_results_files(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        referenced = set(re.findall(r"benchmarks/results/(\w+\.txt)", text))
        assert referenced
        # Files may not exist before the first bench run, but their bench
        # producers must: ablation_<x>.txt <- bench_ablation_<x>.py, etc.
        for name in referenced:
            stem = name.removesuffix(".txt")
            producer = ROOT / "benchmarks" / f"bench_{stem}.py"
            assert producer.exists(), f"no bench produces {name}"

    def test_covers_all_figures_and_tables(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for table in (1, 2, 3):
            assert f"Table {table}" in text
        for figure in range(1, 17):
            assert f"Fig. {figure}" in text, f"Figure {figure} missing"
