"""Tests for the spectral substrate."""

import numpy as np
import pytest

from repro.exceptions import AlgorithmError
from repro.graphs import Graph, cycle_graph, erdos_renyi_graph, normalized_laplacian
from repro.spectral import fix_signs, heat_kernel_diagonals, laplacian_eigenpairs


class TestEigenpairs:
    def test_full_spectrum(self, karate_like):
        vals, vecs = laplacian_eigenpairs(karate_like)
        assert vals.shape == (34,)
        assert vecs.shape == (34, 34)
        assert np.all(np.diff(vals) >= -1e-10)

    def test_partial_spectrum(self, karate_like):
        vals, vecs = laplacian_eigenpairs(karate_like, k=5)
        full_vals, _ = laplacian_eigenpairs(karate_like)
        assert np.allclose(vals, full_vals[:5], atol=1e-8)

    def test_eigen_equation(self, karate_like):
        lap = normalized_laplacian(karate_like, dense=True)
        vals, vecs = laplacian_eigenpairs(karate_like, k=4)
        assert np.allclose(lap @ vecs, vecs * vals[np.newaxis, :], atol=1e-8)

    def test_first_eigenvalue_zero_when_connected(self, pl_graph):
        vals, _ = laplacian_eigenpairs(pl_graph, k=2)
        assert vals[0] == pytest.approx(0.0, abs=1e-9)
        assert vals[1] > 1e-6

    def test_sparse_path_used_for_large_graphs(self):
        g = erdos_renyi_graph(700, 0.02, seed=0)  # above the dense cutoff
        vals, vecs = laplacian_eigenpairs(g, k=6)
        assert vals.shape == (6,)
        lap = normalized_laplacian(g, dense=True)
        assert np.allclose(lap @ vecs, vecs * vals[np.newaxis, :], atol=1e-6)

    def test_empty_graph_rejected(self):
        with pytest.raises(AlgorithmError):
            laplacian_eigenpairs(Graph(0))


class TestFixSigns:
    def test_idempotent(self, karate_like):
        _, vecs = laplacian_eigenpairs(karate_like, k=5)
        assert np.allclose(fix_signs(vecs), vecs)

    def test_flips_negative_peak(self):
        vecs = np.array([[0.1, -0.9], [0.9, 0.1]])
        fixed = fix_signs(vecs)
        assert fixed[1, 0] > 0
        assert fixed[0, 1] > 0

    def test_permutation_invariant_after_fixing(self, pl_graph):
        """Isomorphic graphs get the same eigenvectors up to the node relabeling."""
        from repro.graphs.operations import permute_graph
        rng = np.random.default_rng(0)
        perm = rng.permutation(pl_graph.num_nodes)
        permuted = permute_graph(pl_graph, perm)
        vals_a, vecs_a = laplacian_eigenpairs(pl_graph, k=4)
        vals_b, vecs_b = laplacian_eigenpairs(permuted, k=4)
        assert np.allclose(vals_a, vals_b, atol=1e-8)
        # Skip eigenvectors with nearly-repeated eigenvalues (rotation freedom).
        for j in range(4):
            gap_ok = (j == 0 or vals_a[j] - vals_a[j - 1] > 1e-6) and (
                j == 3 or vals_a[j + 1] - vals_a[j] > 1e-6
            )
            if gap_ok:
                assert np.allclose(np.abs(vecs_a[:, j]),
                                   np.abs(vecs_b[perm, j]), atol=1e-6)


class TestHeatKernelDiagonals:
    def test_shape(self, small_cycle):
        vals, vecs = laplacian_eigenpairs(small_cycle)
        diags = heat_kernel_diagonals(vals, vecs, [0.1, 1.0, 10.0])
        assert diags.shape == (3, 6)

    def test_matches_expm_diagonal(self, triangle):
        from scipy.linalg import expm
        lap = normalized_laplacian(triangle, dense=True)
        vals, vecs = laplacian_eigenpairs(triangle)
        diags = heat_kernel_diagonals(vals, vecs, [0.5])
        assert np.allclose(diags[0], np.diag(expm(-0.5 * lap)))


class TestEigshFallback:
    def test_arpack_failure_falls_back_to_dense_with_diagnostic(self, monkeypatch):
        from scipy.sparse.linalg import ArpackError

        from repro.diagnostics import capture_diagnostics
        from repro.spectral import decomposition

        def _broken_eigsh(*args, **kwargs):
            raise ArpackError(-9999, {-9999: "injected breakdown"})

        monkeypatch.setattr(decomposition, "eigsh", _broken_eigsh)
        graph = erdos_renyi_graph(650, 0.02, seed=3)  # above _DENSE_CUTOFF
        with capture_diagnostics() as events:
            vals, vecs = laplacian_eigenpairs(graph, k=4)
        assert vals.shape == (4,)
        assert vecs.shape == (650, 4)
        assert np.all(np.diff(vals) >= 0)
        assert any(e.kind == "eigsh_failure"
                   and e.fallback_used == "dense_eigh" for e in events)

    def test_non_arpack_error_propagates(self, monkeypatch):
        from repro.diagnostics import capture_diagnostics
        from repro.spectral import decomposition

        def _buggy_eigsh(*args, **kwargs):
            raise ValueError("a caller bug, not an ARPACK breakdown")

        monkeypatch.setattr(decomposition, "eigsh", _buggy_eigsh)
        graph = erdos_renyi_graph(650, 0.02, seed=3)
        with capture_diagnostics() as events:
            with pytest.raises(ValueError):
                laplacian_eigenpairs(graph, k=4)
        assert events == []


class TestShiftInvertFailureFallback:
    """Regression: a singular shift-invert factorization surfaces as
    ``RuntimeError`` (splu) or ``numpy.linalg.LinAlgError`` — not as
    ``ArpackError`` — and must take the same dense fallback instead of
    crashing the cell.  The natural trigger is a graph with an isolated
    node, whose normalized-Laplacian row is all zero."""

    @staticmethod
    def _isolated_node_graph():
        # erdos_renyi leaves node 649 untouched: wire a graph where the
        # last node has no edges at all, above the dense cutoff (600).
        base = erdos_renyi_graph(650, 0.02, seed=3)
        kept = [(u, v) for u, v in base.edges() if u != 649 and v != 649]
        return Graph(650, kept)

    @pytest.mark.parametrize("exc_factory", [
        lambda: RuntimeError("Factor is exactly singular"),
        lambda: np.linalg.LinAlgError("singular matrix"),
    ])
    def test_singular_factorization_falls_back_to_dense(self, monkeypatch,
                                                        exc_factory):
        from repro.diagnostics import capture_diagnostics
        from repro.spectral import decomposition

        def _singular_eigsh(*args, **kwargs):
            raise exc_factory()

        monkeypatch.setattr(decomposition, "eigsh", _singular_eigsh)
        graph = self._isolated_node_graph()
        with capture_diagnostics() as events:
            vals, vecs = laplacian_eigenpairs(graph, k=4)
        assert vals.shape == (4,)
        assert vecs.shape == (650, 4)
        assert np.all(np.diff(vals) >= 0)
        assert any(e.kind == "eigsh_failure"
                   and e.fallback_used == "dense_eigh" for e in events)

    def test_isolated_node_graph_end_to_end(self):
        """Whatever path eigsh takes on the singular Laplacian, the call
        must return valid ascending eigenpairs, never raise."""
        graph = self._isolated_node_graph()
        vals, vecs = laplacian_eigenpairs(graph, k=4)
        assert vals.shape == (4,)
        assert np.all(np.isfinite(vals)) and np.all(np.isfinite(vecs))
        assert np.all(np.diff(vals) >= -1e-12)


class TestFixSignsTieBreaking:
    """Satellite pin: sign gauges must not depend on which of two
    magnitude-tied entries argmax happens to visit first."""

    def test_exact_tie_lowest_index_decides(self):
        # |v| peaks at rows 0 and 2 with opposite signs; the lowest tied
        # index (row 0, negative) decides, so the column flips.
        col = np.array([-0.7, 0.1, 0.7, 0.2])
        fixed = fix_signs(col[:, np.newaxis])
        assert fixed[0, 0] > 0

    def test_tie_with_positive_first_keeps_sign(self):
        col = np.array([0.7, 0.1, -0.7, 0.2])
        fixed = fix_signs(col[:, np.newaxis])
        assert np.allclose(fixed[:, 0], col)

    def test_near_tie_within_rtol_uses_lowest_index(self):
        # One-ulp-style jitter: row 0 is within 1e-13 (relative) of the
        # peak at row 2 — close enough that a different BLAS build could
        # swap their order — so row 0 must decide either way.
        peak = 0.7
        col = np.array([-(peak * (1 - 1e-13)), 0.1, peak, 0.2])
        fixed = fix_signs(col[:, np.newaxis])
        assert fixed[0, 0] > 0

    def test_zero_at_deciding_index_counts_positive(self):
        col = np.zeros(3)
        fixed = fix_signs(col[:, np.newaxis])
        assert np.allclose(fixed[:, 0], col)

    def test_gauge_independent_of_input_sign(self):
        from hypothesis import given, settings, strategies as st
        from hypothesis.extra import numpy as hnp

        @settings(max_examples=60, deadline=None)
        @given(hnp.arrays(np.float64, (7, 3),
                          elements=st.floats(-1.0, 1.0, allow_nan=False)))
        def run(vecs):
            fixed = fix_signs(vecs)
            flipped = fix_signs(-vecs)
            # The gauge is a property of the *line* each column spans:
            # v and -v must land on the same representative.
            assert np.array_equal(fixed, flipped)
            # Idempotence: the representative is already gauged.
            assert np.array_equal(fix_signs(fixed), fixed)

        run()
