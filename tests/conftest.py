"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    cycle_graph,
    erdos_renyi_graph,
    newman_watts_graph,
    path_graph,
    powerlaw_cluster_graph,
)
from repro.noise import make_pair


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def triangle():
    """K3: the smallest graph with a triangle."""
    return Graph(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def small_path():
    """P5: 0-1-2-3-4."""
    return path_graph(5)


@pytest.fixture
def small_cycle():
    return cycle_graph(6)


@pytest.fixture
def karate_like():
    """A small connected ER graph used widely across tests."""
    return erdos_renyi_graph(34, 0.15, seed=7)


@pytest.fixture
def pl_graph():
    """A 120-node powerlaw-cluster graph (connected by construction)."""
    return powerlaw_cluster_graph(120, 4, 0.3, seed=11)


@pytest.fixture
def nw_graph():
    return newman_watts_graph(120, 6, 0.4, seed=11)


@pytest.fixture
def noisy_pair(pl_graph):
    """A 2%-one-way-noise instance with known ground truth."""
    return make_pair(pl_graph, "one-way", 0.02, seed=13)


@pytest.fixture
def clean_pair(pl_graph):
    """An isomorphic (zero-noise) instance."""
    return make_pair(pl_graph, "one-way", 0.0, seed=13)
