"""Tests for the quality measures (paper §5.2), with hand-computed cases."""

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.graphs import Graph, cycle_graph, path_graph
from repro.measures import (
    accuracy,
    edge_correctness,
    evaluate_all,
    induced_conserved_structure,
    matched_neighborhood_consistency,
    symmetric_substructure_score,
)
from repro.noise import make_pair


class TestAccuracy:
    def test_perfect(self):
        truth = np.array([2, 0, 1])
        assert accuracy(truth, truth) == 1.0

    def test_partial(self):
        assert accuracy([0, 1, 2, 3], [0, 1, 3, 2]) == 0.5

    def test_unmatched_counts_as_wrong(self):
        assert accuracy([-1, 1], [0, 1]) == 0.5

    def test_unmatched_never_matches_negative_truth(self):
        # Even if truth contained -1 (it should not), -1 == -1 is not correct.
        assert accuracy([-1], [-1]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            accuracy([0, 1], [0, 1, 2])

    def test_empty(self):
        assert accuracy([], []) == 0.0


class TestEdgeCorrectness:
    def test_identity_on_same_graph(self, small_cycle):
        mapping = np.arange(6)
        assert edge_correctness(small_cycle, small_cycle, mapping) == 1.0

    def test_hand_computed(self):
        # Source P3: 0-1-2; target only has edge (0, 1).
        source = path_graph(3)
        target = Graph(3, [(0, 1)])
        mapping = np.array([0, 1, 2])
        # f(E_A) ∩ E_B = {(0,1)}; |E_A| = 2.
        assert edge_correctness(source, target, mapping) == pytest.approx(0.5)

    def test_unmatched_endpoint_not_conserved(self):
        source = path_graph(3)
        target = path_graph(3)
        mapping = np.array([0, 1, -1])
        assert edge_correctness(source, target, mapping) == pytest.approx(0.5)

    def test_empty_source_edges(self):
        source = Graph(3)
        target = path_graph(3)
        assert edge_correctness(source, target, np.arange(3)) == 0.0

    def test_bad_mapping_rejected(self, small_cycle):
        with pytest.raises(ReproError):
            edge_correctness(small_cycle, small_cycle, [0, 1])
        with pytest.raises(ReproError):
            edge_correctness(small_cycle, small_cycle, [9] * 6)


class TestIcsAndS3:
    def test_ics_penalizes_dense_target_region(self):
        # Source: single edge; mapped into a target triangle.
        source = Graph(3, [(0, 1)])
        target = Graph(3, [(0, 1), (1, 2), (0, 2)])
        mapping = np.array([0, 1, 2])
        # Aligned edges = 1; induced target edges on {0,1,2} = 3.
        assert induced_conserved_structure(source, target, mapping) == pytest.approx(1 / 3)
        # EC would be a perfect 1.0 here - the flaw ICS corrects.
        assert edge_correctness(source, target, mapping) == 1.0

    def test_s3_hand_computed(self):
        source = Graph(3, [(0, 1), (1, 2)])
        target = Graph(3, [(0, 1), (0, 2)])
        mapping = np.array([0, 1, 2])
        # f(E_A) ∩ E_B = {(0,1)}: aligned = 1; induced = 2; |E_A| = 2.
        # S3 = 1 / (2 + 2 - 1) = 1/3.
        assert symmetric_substructure_score(source, target, mapping) == pytest.approx(1 / 3)

    def test_s3_equals_one_iff_perfect(self, small_cycle):
        assert symmetric_substructure_score(
            small_cycle, small_cycle, np.arange(6)
        ) == 1.0

    def test_ics_empty_induced(self):
        source = path_graph(2)
        target = Graph(3, [(1, 2)])
        mapping = np.array([0, 0])  # degenerate many-to-one image {0}
        assert induced_conserved_structure(source, target, mapping) == 0.0


class TestMnc:
    def test_perfect_alignment(self, small_cycle):
        assert matched_neighborhood_consistency(
            small_cycle, small_cycle, np.arange(6)
        ) == 1.0

    def test_hand_computed(self):
        # Source: star center 0 with leaves 1, 2. Target: path 0-1, 1-2.
        source = Graph(3, [(0, 1), (0, 2)])
        target = path_graph(3)
        mapping = np.array([1, 0, 2])
        # Node 0 -> 1: mapped N(0) = {f(1), f(2)} = {0, 2}; N_B(1) = {0, 2}: J = 1.
        # Node 1 -> 0: mapped N(1) = {f(0)} = {1}; N_B(0) = {1}: J = 1.
        # Node 2 -> 2: mapped N(2) = {f(0)} = {1}; N_B(2) = {1}: J = 1.
        assert matched_neighborhood_consistency(source, target, mapping) == 1.0

    def test_disjoint_neighborhoods(self):
        source = Graph(4, [(0, 1)])
        target = Graph(4, [(0, 2)])
        mapping = np.array([0, 1, 2, 3])
        # Node 0: mapped N = {1}, actual N = {2}: J = 0.
        # Node 1: mapped N = {0}, actual N = {} : J = 0.
        # Nodes 2, 3: both neighborhoods empty -> convention 1.0... node 2's
        # actual N_B(2) = {0}, so J = 0; node 3 both empty -> 1.
        value = matched_neighborhood_consistency(source, target, mapping)
        assert value == pytest.approx(1 / 4)

    def test_unmatched_scores_zero(self):
        source = path_graph(2)
        target = path_graph(2)
        assert matched_neighborhood_consistency(
            source, target, np.array([-1, -1])
        ) == 0.0


class TestEvaluateAll:
    def test_keys(self, noisy_pair):
        mapping = noisy_pair.ground_truth
        out = evaluate_all(noisy_pair.source, noisy_pair.target, mapping,
                           noisy_pair.ground_truth)
        assert set(out) == {"accuracy", "mnc", "ec", "ics", "s3"}
        assert out["accuracy"] == 1.0

    def test_without_truth(self, noisy_pair):
        out = evaluate_all(noisy_pair.source, noisy_pair.target,
                           noisy_pair.ground_truth)
        assert "accuracy" not in out

    def test_all_measures_in_unit_interval(self, noisy_pair):
        rng = np.random.default_rng(0)
        n = noisy_pair.source.num_nodes
        random_mapping = rng.permutation(n)
        out = evaluate_all(noisy_pair.source, noisy_pair.target,
                           random_mapping, noisy_pair.ground_truth)
        for key, value in out.items():
            assert 0.0 <= value <= 1.0, key

    def test_truth_mapping_scores_high_under_noise(self, pl_graph):
        pair = make_pair(pl_graph, "one-way", 0.05, seed=0)
        out = evaluate_all(pair.source, pair.target, pair.ground_truth,
                           pair.ground_truth)
        assert out["accuracy"] == 1.0
        assert out["ec"] == pytest.approx(0.95, abs=0.02)


class TestAlignedEdgeCountVectorization:
    """The vectorized |f(E_A)| must agree with the definitional
    per-edge has_edge loop on arbitrary graphs and mappings."""

    @staticmethod
    def _random_case(draw):
        from hypothesis import strategies as st

        n_source = draw(st.integers(min_value=0, max_value=30))
        n_target = draw(st.integers(min_value=1, max_value=30))
        source_edges = draw(st.lists(
            st.tuples(st.integers(0, max(n_source - 1, 0)),
                      st.integers(0, max(n_source - 1, 0))),
            max_size=60,
        ))
        target_edges = draw(st.lists(
            st.tuples(st.integers(0, n_target - 1),
                      st.integers(0, n_target - 1)),
            max_size=60,
        ))
        mapping = draw(st.lists(
            st.integers(-1, n_target - 1),
            min_size=n_source, max_size=n_source,
        ))
        return n_source, n_target, source_edges, target_edges, mapping

    def test_matches_loop_reference_on_random_graphs(self):
        from hypothesis import given, settings, strategies as st

        from repro.measures.metrics import (
            _aligned_edge_count,
            _aligned_edge_count_reference,
        )

        @settings(max_examples=200, deadline=None)
        @given(st.data())
        def check(data):
            n_s, n_t, s_edges, t_edges, mapping = self._random_case(data.draw)
            source = Graph(n_s, [(u, v) for u, v in s_edges if u != v])
            target = Graph(n_t, [(u, v) for u, v in t_edges if u != v])
            arr = np.asarray(mapping, dtype=np.int64)
            assert (_aligned_edge_count(source, target, arr)
                    == _aligned_edge_count_reference(source, target, arr))

        check()

    def test_matches_loop_reference_on_noisy_pairs(self):
        from repro.measures.metrics import (
            _aligned_edge_count,
            _aligned_edge_count_reference,
        )

        rng = np.random.default_rng(7)
        for seed in range(5):
            pair = make_pair(cycle_graph(50), "multimodal", 0.1, seed=seed)
            for mapping in (pair.ground_truth,
                            rng.permutation(pair.source.num_nodes),
                            np.full(pair.source.num_nodes, -1)):
                arr = np.asarray(mapping, dtype=np.int64)
                assert (_aligned_edge_count(pair.source, pair.target, arr)
                        == _aligned_edge_count_reference(
                            pair.source, pair.target, arr))
