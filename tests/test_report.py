"""Tests for markdown report generation."""

import numpy as np

from repro.harness import ResultTable, RunRecord
from repro.harness.report import markdown_report


def _record(**overrides):
    base = dict(
        algorithm="isorank", dataset="pl", noise_type="one-way",
        noise_level=0.01, repetition=0, assignment="jv",
        measures={"accuracy": 0.9, "s3": 0.8},
        similarity_time=1.0, assignment_time=0.1,
    )
    base.update(overrides)
    return RunRecord(**base)


class TestMarkdownReport:
    def test_structure(self):
        table = ResultTable([
            _record(noise_level=0.0, measures={"accuracy": 1.0, "s3": 1.0}),
            _record(noise_level=0.05, measures={"accuracy": 0.4, "s3": 0.3}),
        ])
        text = markdown_report(table, title="demo")
        assert text.startswith("# demo")
        assert "## accuracy — one-way noise" in text
        assert "| isorank |" in text
        assert "## chart" in text
        assert "```" in text

    def test_missing_cells_dashed(self):
        table = ResultTable([
            _record(),
            _record(algorithm="gwl", noise_level=0.05, failed=True,
                    measures={}),
        ])
        text = markdown_report(table)
        assert "--" in text

    def test_failures_section(self):
        table = ResultTable([
            _record(failed=True, measures={}, error="timeout after 3h"),
        ])
        text = markdown_report(table)
        assert "## failures" in text
        assert "timeout after 3h" in text

    def test_no_failures_no_section(self):
        text = markdown_report(ResultTable([_record()]))
        assert "## failures" not in text

    def test_empty_table(self):
        text = markdown_report(ResultTable())
        assert "records: 0" in text

    def test_measure_selection(self):
        table = ResultTable([_record(measures={"ec": 0.7})])
        text = markdown_report(table, measures=("ec",), chart_measure="ec")
        assert "## ec — one-way noise" in text

    def test_chart_disabled(self):
        table = ResultTable([_record()])
        text = markdown_report(table, chart_measure=None)
        assert "## chart" not in text
