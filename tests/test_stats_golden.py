"""Golden regression tests pinning the statistics layer's exact output.

A fixed 3-algorithm, 2-level, 8-repetition result table (handcrafted
values, fixed fake timings — no RNG, no clock) must always yield the
same p-values, CI endpoints, Holm corrections, CSV bytes, report
section, and CLI output.  Any change to seeding, resampling order,
estimators, or formatting shows up here as a diff a reviewer must
consciously accept.

The fixture's story mirrors the paper's headline phenomenon: algorithm
``alpha`` dominates at every noise level, while ``bravo``'s clean-graph
lead over ``charlie`` vanishes at 5% noise — and the layer must refuse
to call the vanished lead significant.
"""

import io
import json

import pytest

from repro.exceptions import ExperimentError
from repro.cli import main
from repro.harness.journal import RunJournal, cell_key
from repro.harness.report import markdown_report
from repro.harness.results import RunRecord, ResultTable
from repro.stats import (
    StatsConfig,
    compute_sweep_stats,
    comparison_seed,
    group_seed,
)

# Handcrafted per-repetition wiggle (sums to zero) applied with a
# per-algorithm phase, so paired differences vary across repetitions
# without any random draw.
WIGGLE = [0.004, -0.002, 0.001, -0.003, 0.002, -0.001, 0.003, -0.004]
BASE = {"alpha": 0.92, "bravo": 0.84, "charlie": 0.80}
DROP = {"alpha": 0.8, "bravo": 0.8, "charlie": 0.0}
PHASE = {"alpha": 0, "bravo": 3, "charlie": 5}
LEVELS = (0.0, 0.05)
REPS = 8

GOLDEN_CONFIG = StatsConfig(resamples=512, seed=17)

GOLDEN_SUMMARY = """\
 accuracy one-way 0: alpha vs bravo Δ=+0.0800 [+0.0763, +0.0834] p=0.0078 holm=0.0469* (n=8)
 accuracy one-way 0: alpha vs charlie Δ=+0.1200 [+0.1159, +0.1230] p=0.0078 holm=0.0469* (n=8)
 accuracy one-way 0: bravo vs charlie Δ=+0.0400 [+0.0386, +0.0414] p=0.0078 holm=0.0469* (n=8)
       s3 one-way 0: alpha vs bravo Δ=+0.0720 [+0.0688, +0.0752] p=0.0078 holm=0.0469* (n=8)
       s3 one-way 0: alpha vs charlie Δ=+0.1080 [+0.1044, +0.1111] p=0.0078 holm=0.0469* (n=8)
       s3 one-way 0: bravo vs charlie Δ=+0.0360 [+0.0350, +0.0374] p=0.0078 holm=0.0469* (n=8)
 accuracy one-way 0.05: alpha vs bravo Δ=+0.0800 [+0.0763, +0.0836] p=0.0078 holm=0.0469* (n=8)
 accuracy one-way 0.05: alpha vs charlie Δ=+0.0800 [+0.0763, +0.0834] p=0.0078 holm=0.0469* (n=8)
 accuracy one-way 0.05: bravo vs charlie Δ=+0.0000 [-0.0012, +0.0014] p=1.0000 holm=1.0000  (n=8)
       s3 one-way 0.05: alpha vs bravo Δ=+0.0720 [+0.0689, +0.0755] p=0.0078 holm=0.0469* (n=8)
       s3 one-way 0.05: alpha vs charlie Δ=+0.0720 [+0.0682, +0.0751] p=0.0078 holm=0.0469* (n=8)
       s3 one-way 0.05: bravo vs charlie Δ=+0.0000 [-0.0010, +0.0015] p=1.0000 holm=1.0000  (n=8)"""

GOLDEN_CSV = """\
noise_type,noise_level,measure,algorithm_a,algorithm_b,n_pairs,mean_a,mean_b,mean_diff,ci_lo,ci_hi,p_value,p_holm,significant,exact,seed
one-way,0.0,accuracy,alpha,bravo,8,0.92,0.84,0.08000000000000007,0.07625000000000007,0.08337500000000007,0.0078125,0.046875,True,True,1123913570
one-way,0.0,accuracy,alpha,charlie,8,0.92,0.8,0.12,0.11591205905200919,0.123,0.0078125,0.046875,True,True,1613322148
one-way,0.0,accuracy,bravo,charlie,8,0.84,0.8,0.039999999999999925,0.03862499999999992,0.041374999999999926,0.0078125,0.046875,True,True,2885970789
one-way,0.0,s3,alpha,bravo,8,0.828,0.756,0.072,0.06881739186047543,0.07515000000000001,0.0078125,0.046875,True,True,1017175070
one-way,0.0,s3,alpha,charlie,8,0.828,0.72,0.108,0.10440737869558916,0.11115,0.0078125,0.046875,True,True,2088599082
one-way,0.0,s3,bravo,charlie,8,0.756,0.72,0.036000000000000004,0.034987500000000005,0.037359728544047566,0.0078125,0.046875,True,True,3647144165
one-way,0.05,accuracy,alpha,bravo,8,0.88,0.8,0.07999999999999996,0.07628798364813627,0.08359026125136992,0.0078125,0.046875,True,True,1608613459
one-way,0.05,accuracy,alpha,charlie,8,0.88,0.8,0.07999999999999996,0.07626197200106694,0.0834422389088646,0.0078125,0.046875,True,True,2229866092
one-way,0.05,accuracy,bravo,charlie,8,0.8,0.8,0.0,-0.0011620539361721187,0.0013750000000000012,1.0,1.0,False,True,186211858
one-way,0.05,s3,alpha,bravo,8,0.792,0.72,0.072,0.06891584556594153,0.07548749999999999,0.0078125,0.046875,True,True,1610680206
one-way,0.05,s3,alpha,charlie,8,0.792,0.72,0.072,0.068175,0.07514999999999998,0.0078125,0.046875,True,True,194578776
one-way,0.05,s3,bravo,charlie,8,0.72,0.72,0.0,-0.0010124999999999908,0.0014624999999999777,1.0,1.0,False,True,3828988502
"""

GOLDEN_REPORT_SECTION = """\
## significance — accuracy (one-way noise)

mean with 95% bca bootstrap CI over 512 resamples:

| algorithm | 0 | 0.05 |
|---|---|---|
| alpha | 0.920 [0.918, 0.922] | 0.880 [0.878, 0.882] |
| bravo | 0.840 [0.838, 0.842] | 0.800 [0.798, 0.802] |
| charlie | 0.800 [0.798, 0.802] | 0.800 [0.798, 0.802] |

paired sign-flip permutation tests (Δ = row's first − second mean; `*` = significant after Holm at α=0.05 within this measure × noise-type family):

| pair | 0 | 0.05 |
|---|---|---|
| alpha vs bravo | Δ+0.080 p=0.0469\\* | Δ+0.080 p=0.0469\\* |
| alpha vs charlie | Δ+0.120 p=0.0469\\* | Δ+0.080 p=0.0469\\* |
| bravo vs charlie | Δ+0.040 p=0.0469\\* | Δ+0.000 p=1.0000 |
"""


def golden_records():
    records = []
    for name in sorted(BASE):
        for level in LEVELS:
            for rep in range(REPS):
                value = (BASE[name] - DROP[name] * level
                         + WIGGLE[(rep + PHASE[name]) % REPS])
                records.append(RunRecord(
                    algorithm=name, dataset="synthetic",
                    noise_type="one-way", noise_level=level,
                    repetition=rep, assignment="jv",
                    measures={"accuracy": round(value, 6),
                              "s3": round(value * 0.9, 6)},
                    similarity_time=0.25, assignment_time=0.125,
                ))
    return records


@pytest.fixture(scope="module")
def golden_stats():
    return compute_sweep_stats(ResultTable(golden_records()), GOLDEN_CONFIG)


class TestGoldenValues:
    def test_summary_pinned(self, golden_stats):
        assert golden_stats.format_summary() == GOLDEN_SUMMARY

    def test_csv_pinned(self, golden_stats, tmp_path):
        path = tmp_path / "stats.csv"
        golden_stats.to_csv(path)
        assert path.read_text() == GOLDEN_CSV

    def test_seeds_pinned(self, golden_stats):
        # The derived seeds in the CSV above must match the derivation
        # functions; a silent change to the seed scheme invalidates
        # every journaled stats entry in the wild.
        assert comparison_seed(17, "one-way", 0.0, "accuracy",
                               "alpha", "bravo") == 1123913570
        assert group_seed(17, "one-way", 0.05, "s3", "charlie") == \
            golden_stats.group("one-way", 0.05, "s3", "charlie").seed

    def test_vanished_lead_not_significant(self, golden_stats):
        # bravo beats charlie on clean graphs but ties at 5% noise; the
        # layer must call the first and refuse the second.
        clean = golden_stats.comparison("one-way", 0.0, "accuracy",
                                        "bravo", "charlie")
        noisy = golden_stats.comparison("one-way", 0.05, "accuracy",
                                        "bravo", "charlie")
        assert golden_stats.is_significant(clean)
        assert not golden_stats.is_significant(noisy)
        assert noisy.p_value == 1.0

    def test_holm_is_family_wide(self, golden_stats):
        # 6 comparisons per (noise type, measure) family; the smallest
        # exact p (2/256) is scaled by the 6-member family.
        stat = golden_stats.comparison("one-way", 0.0, "accuracy",
                                       "alpha", "bravo")
        assert stat.p_value == pytest.approx(2 / 256)
        assert stat.p_holm == pytest.approx(6 * 2 / 256)

    def test_exact_enumeration_used(self, golden_stats):
        assert all(c.exact for c in golden_stats.comparisons)
        assert all(c.n_pairs == REPS for c in golden_stats.comparisons)


class TestGoldenReport:
    def test_significance_section_pinned(self, golden_stats):
        table = ResultTable(golden_records())
        report = markdown_report(table, stats=golden_stats)
        assert GOLDEN_REPORT_SECTION in report
        # Both measure families render their own section.
        assert "## significance — s3 (one-way noise)" in report

    def test_table_csv_annotated(self, golden_stats, tmp_path):
        path = tmp_path / "table.csv"
        table = ResultTable(golden_records())
        table.to_csv(path, stats=golden_stats)
        lines = path.read_text().splitlines()
        header = lines[0].split(",")
        for column in ("pvalue_accuracy", "ci_lo_accuracy",
                       "ci_hi_accuracy", "pvalue_s3", "ci_lo_s3",
                       "ci_hi_s3"):
            assert column in header
        first = dict(zip(header, lines[1].split(",")))
        assert first["algorithm"] == "alpha"
        assert first["pvalue_accuracy"] == "0.046875"
        assert first["ci_lo_accuracy"] == "0.9181250000000001"
        assert first["ci_hi_accuracy"] == "0.9216250000000001"

    def test_attached_stats_used_by_default(self, golden_stats):
        table = ResultTable(golden_records())
        table.stats = golden_stats
        assert GOLDEN_REPORT_SECTION in markdown_report(table)


class TestGoldenCli:
    def test_stats_subcommand_pinned(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        writer = RunJournal(journal)
        for r in golden_records():
            writer.append(cell_key(r.dataset, r.noise_type, r.noise_level,
                                   r.repetition, r.algorithm), r)
        writer.close()
        out = io.StringIO()
        code = main(["stats", "--journal", str(journal),
                     "--resamples", "512", "--seed", "17"], out=out)
        text = out.getvalue()
        assert code == 0
        assert ("48 records -> 12 group CIs, 12 paired comparisons "
                "(512 resamples, bca bootstrap, Holm at α=0.05)") in text
        assert GOLDEN_SUMMARY in text
        assert "significant after Holm: 10 of 12 comparisons" in text
        # The side-car journal now holds every unit; a rerun resumes.
        assert (tmp_path / "run.jsonl.stats").exists()
        again = io.StringIO()
        assert main(["stats", "--journal", str(journal),
                     "--resamples", "512", "--seed", "17"],
                    out=again) == 0
        assert GOLDEN_SUMMARY in again.getvalue()

    def test_missing_journal_errors(self, tmp_path):
        out = io.StringIO()
        code = main(["stats", "--journal", str(tmp_path / "nope.jsonl")],
                    out=out)
        assert code == 2
        assert "no journal" in out.getvalue()


class TestEdgeCases:
    def test_result_dataclasses_serialize(self):
        from repro.stats import bootstrap_ci, permutation_test
        perm = permutation_test([0.1, 0.2, -0.1], resamples=8, seed=0)
        assert perm.to_dict() == {
            "statistic": perm.statistic, "p_value": perm.p_value,
            "resamples": perm.resamples, "exact": perm.exact,
        }
        boot = bootstrap_ci([0.1, 0.2, 0.3], resamples=16, seed=0)
        assert boot.to_dict()["method"] == "bca"
        assert boot.to_dict()["low"] == boot.low

    def test_summary_truncation(self, golden_stats):
        summary = golden_stats.format_summary(max_lines=3)
        assert summary.count("\n") == 3
        assert summary.endswith("... 9 more comparisons")

    def test_len_counts_all_units(self, golden_stats):
        assert len(golden_stats) == 24  # 12 groups + 12 comparisons

    def test_missing_cell_lookups(self, golden_stats):
        assert golden_stats.leader("two-way", 0.0, "accuracy") is None
        assert golden_stats.group("one-way", 0.9, "accuracy",
                                  "alpha") is None
        assert golden_stats.comparison("one-way", 0.0, "accuracy",
                                       "alpha", "zeta") is None
        assert golden_stats.annotations("alpha", "two-way", 0.0,
                                        "accuracy") == {}

    def test_sparse_cells_not_enumerated(self):
        # An algorithm failing everywhere at one level contributes no
        # group there, and a pair sharing fewer than min_pairs
        # instances contributes no comparison — absence, not NaN.
        records = [r for r in golden_records()
                   if not (r.algorithm == "charlie"
                           and r.noise_level == 0.05)]
        records += [
            RunRecord(algorithm="charlie", dataset="synthetic",
                      noise_type="one-way", noise_level=0.05,
                      repetition=rep, assignment="jv", measures={},
                      similarity_time=0.25, assignment_time=0.125,
                      failed=True, error="boom")
            for rep in range(8)
        ]
        stats = compute_sweep_stats(ResultTable(records),
                                    StatsConfig(resamples=64, seed=1))
        assert stats.group("one-way", 0.05, "accuracy", "charlie") is None
        assert stats.comparison("one-way", 0.05, "accuracy",
                                "bravo", "charlie") is None
        assert stats.group("one-way", 0.0, "accuracy",
                           "charlie") is not None

    def test_min_pairs_gate(self):
        # With min_pairs above the repetition count, comparisons vanish
        # but groups survive.
        stats = compute_sweep_stats(
            ResultTable(golden_records()),
            StatsConfig(resamples=64, seed=1, min_pairs=9))
        assert stats.comparisons == []
        assert len(stats.groups) == 12

    def test_serial_progress_fires_per_unit(self):
        seen = []
        compute_sweep_stats(ResultTable(golden_records()),
                            StatsConfig(resamples=64, seed=1),
                            progress=seen.append)
        assert len(seen) == 24
        assert len(set(seen)) == 24

    def test_measure_filter(self):
        stats = compute_sweep_stats(
            ResultTable(golden_records()),
            StatsConfig(resamples=64, seed=1, measures=("accuracy",)))
        assert stats.measures() == ["accuracy"]
        assert len(stats.groups) == 6


class TestJournalCompatibility:
    def _old_journal(self, path, version):
        # A journal exactly as an old release wrote it: v1 records have
        # no trace field, v2 records may carry one.
        record = golden_records()[0].to_dict()
        if version == 1:
            record.pop("trace")
        lines = [
            {"kind": "header", "version": version, "fingerprint": None},
            {"kind": "record",
             "key": cell_key("synthetic", "one-way", 0.0, 0, "alpha"),
             "record": record},
        ]
        path.write_text("".join(json.dumps(line) + "\n" for line in lines))

    @pytest.mark.parametrize("version", [1, 2])
    def test_old_versions_still_load(self, tmp_path, version):
        path = tmp_path / f"v{version}.jsonl"
        self._old_journal(path, version)
        journal = RunJournal(path)
        try:
            assert len(journal) == 1
            record = journal.records[0]
            assert record.algorithm == "alpha"
            assert record.measures["accuracy"] == pytest.approx(0.924)
            assert journal.stats_keys == []
        finally:
            journal.close()

    def test_newer_version_refused(self, tmp_path):
        path = tmp_path / "future.jsonl"
        self._old_journal(path, 4)
        with pytest.raises(ExperimentError, match="format version 4"):
            RunJournal(path)

    def test_stats_lines_roundtrip(self, tmp_path, golden_stats):
        # Journaled units reload bit-identically and a resumed
        # computation reuses them without recomputation.
        table = ResultTable(golden_records())
        path = tmp_path / "side.stats"
        first = compute_sweep_stats(table, GOLDEN_CONFIG, journal=path)
        recomputed = []
        second = compute_sweep_stats(table, GOLDEN_CONFIG, journal=path,
                                     progress=recomputed.append)
        assert recomputed == []
        assert first.format_summary() == second.format_summary() \
            == golden_stats.format_summary()
