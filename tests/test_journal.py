"""Tests for the write-ahead journal and journaled sweeps."""

import json

import pytest

from repro.exceptions import ExperimentError
from repro.graphs import powerlaw_cluster_graph
from repro.harness import (
    ExperimentConfig,
    RunJournal,
    RunRecord,
    cell_key,
    config_fingerprint,
    run_experiment,
)

GRAPH = powerlaw_cluster_graph(40, 3, 0.3, seed=11)


def _record(**overrides):
    base = dict(
        algorithm="isorank", dataset="pl", noise_type="one-way",
        noise_level=0.02, repetition=0, assignment="jv",
        measures={"accuracy": 0.9}, similarity_time=1.0,
        assignment_time=0.5,
    )
    base.update(overrides)
    return RunRecord(**base)


class TestCellKey:
    def test_canonical_and_stable(self):
        key = cell_key("arenas", "one-way", 0.05, 3, "isorank")
        assert key == "arenas|one-way|0.050000|3|isorank"

    def test_float_formatting_cannot_split_cells(self):
        assert (cell_key("d", "t", 0.1, 0, "a")
                == cell_key("d", "t", 0.1000000001, 0, "a"))

    def test_distinct_cells_distinct_keys(self):
        keys = {
            cell_key("d", "t", level, rep, algo)
            for level in (0.0, 0.01)
            for rep in (0, 1)
            for algo in ("a", "b")
        }
        assert len(keys) == 8


class TestRunRecordRoundTrip:
    def test_to_from_dict(self):
        record = _record(failed=True, error="LinAlgError: boom", attempts=2)
        clone = RunRecord.from_dict(record.to_dict())
        assert clone == record

    def test_unknown_keys_ignored(self):
        data = _record().to_dict()
        data["from_the_future"] = 42
        assert RunRecord.from_dict(data) == _record()


class TestRunJournal:
    def test_append_and_reload(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with RunJournal(path) as journal:
            journal.append("k1", _record())
            journal.append("k2", _record(repetition=1))
        reloaded = RunJournal(path)
        assert len(reloaded) == 2
        assert "k1" in reloaded and "k2" in reloaded
        assert reloaded.get("k2").repetition == 1

    def test_append_is_idempotent_per_key(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with RunJournal(path) as journal:
            journal.append("k1", _record())
            journal.append("k1", _record(repetition=9))
        reloaded = RunJournal(path)
        assert len(reloaded) == 1
        assert reloaded.get("k1").repetition == 0  # first write wins

    def test_truncated_tail_dropped_and_recovered(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with RunJournal(path) as journal:
            journal.append("k1", _record())
            journal.append("k2", _record(repetition=1))
        # Simulate a crash mid-append: chop the last line in half.
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 30])
        reloaded = RunJournal(path)
        assert "k1" in reloaded and "k2" not in reloaded
        # The journal stays appendable and well-formed after recovery.
        reloaded.append("k2", _record(repetition=1))
        reloaded.close()
        for line in path.read_text().splitlines():
            json.loads(line)
        assert len(RunJournal(path)) == 2

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with RunJournal(path, fingerprint="aaaa") as journal:
            journal.append("k1", _record())
        with pytest.raises(ExperimentError):
            RunJournal(path, fingerprint="bbbb")
        # Same fingerprint resumes fine.
        assert len(RunJournal(path, fingerprint="aaaa")) == 1

    def test_missing_file_is_empty_journal(self, tmp_path):
        journal = RunJournal(tmp_path / "nope.jsonl")
        assert len(journal) == 0
        assert journal.get("k") is None

    def test_append_from_foreign_process_rejected(self, tmp_path):
        """The journal has a single writer: the process that opened it.
        A forked child appending would interleave partial JSONL lines."""
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("needs fork to hand the open journal to a child")

        journal = RunJournal(tmp_path / "sweep.jsonl")
        journal.append("k1", _record())

        def child(journal, queue):
            try:
                journal.append("k2", _record(repetition=1))
                queue.put("appended")
            except ExperimentError as exc:
                queue.put(f"rejected: {exc}")

        ctx = mp.get_context("fork")
        queue = ctx.Queue()
        proc = ctx.Process(target=child, args=(journal, queue))
        proc.start()
        outcome = queue.get(timeout=30)
        proc.join()
        journal.close()
        assert outcome.startswith("rejected")
        assert "k2" not in RunJournal(tmp_path / "sweep.jsonl")


class TestConfigFingerprint:
    def _config(self, **overrides):
        base = dict(name="fp", algorithms=["isorank"], noise_levels=(0.0,),
                    repetitions=1, seed=3)
        base.update(overrides)
        return ExperimentConfig(**base)

    def test_stable_for_equal_configs(self):
        assert (config_fingerprint(self._config())
                == config_fingerprint(self._config()))

    def test_sensitive_to_sweep_axes(self):
        base = config_fingerprint(self._config())
        assert config_fingerprint(self._config(seed=4)) != base
        assert config_fingerprint(
            self._config(algorithms=["isorank", "nsd"])) != base

    def test_insensitive_to_execution_knobs(self):
        from repro.harness import RetryPolicy
        hardened = self._config(retry_policy=RetryPolicy(max_attempts=2),
                                track_memory=True, workers=4)
        assert (config_fingerprint(hardened)
                == config_fingerprint(self._config()))

    def test_sensitive_to_algorithm_params(self):
        """Regression: a journal written under one hyperparameter set must
        not be silently resumed after the params change — records from
        different configurations would mix in one table."""
        base = config_fingerprint(self._config())
        tuned = self._config(algorithm_params={"isorank": {"alpha": 0.9}})
        retuned = self._config(algorithm_params={"isorank": {"alpha": 0.6}})
        assert config_fingerprint(tuned) != base
        assert config_fingerprint(tuned) != config_fingerprint(retuned)

    def test_empty_param_sets_equal_no_overrides(self):
        base = config_fingerprint(self._config())
        assert config_fingerprint(
            self._config(algorithm_params={"isorank": {}})) == base

    def test_changed_params_rejected_on_resume(self, tmp_path):
        path = tmp_path / "exp.jsonl"
        config = dict(name="fp", algorithms=["isorank"], noise_levels=(0.0,),
                      repetitions=1, seed=3)
        run_experiment(ExperimentConfig(**config), {"pl": GRAPH},
                       journal=str(path))
        tuned = ExperimentConfig(
            algorithm_params={"isorank": {"alpha": 0.42}}, **config)
        with pytest.raises(ExperimentError):
            run_experiment(tuned, {"pl": GRAPH}, journal=str(path))


class TestJournaledExperiment:
    CONFIG = dict(name="j", algorithms=["isorank", "nsd"],
                  noise_levels=(0.0, 0.02), repetitions=1, seed=5)

    def test_first_run_journals_every_cell(self, tmp_path):
        path = tmp_path / "exp.jsonl"
        config = ExperimentConfig(**self.CONFIG)
        table = run_experiment(config, {"pl": GRAPH}, journal=str(path))
        assert len(table) == 4
        assert len(RunJournal(path)) == 4

    def test_rerun_skips_journaled_cells(self, tmp_path):
        path = tmp_path / "exp.jsonl"
        config = ExperimentConfig(**self.CONFIG)
        run_experiment(config, {"pl": GRAPH}, journal=str(path))
        reran = []
        table = run_experiment(config, {"pl": GRAPH}, journal=str(path),
                               progress=reran.append)
        assert reran == []  # nothing executed the second time
        assert len(table) == 4  # but the table is still complete
        assert all(not r.failed for r in table.records)

    def test_partial_journal_runs_only_missing_cells(self, tmp_path):
        path = tmp_path / "exp.jsonl"
        config = ExperimentConfig(**self.CONFIG)
        full = run_experiment(config, {"pl": GRAPH}, journal=str(path))
        # Rebuild a journal holding only the first two cells.
        partial = tmp_path / "partial.jsonl"
        with RunJournal(partial) as journal:
            for record in full.records[:2]:
                journal.append(
                    cell_key(record.dataset, record.noise_type,
                             record.noise_level, record.repetition,
                             record.algorithm),
                    record,
                )
        reran = []
        table = run_experiment(config, {"pl": GRAPH}, journal=str(partial),
                               progress=reran.append)
        assert len(reran) == 2
        assert len(table) == 4
        assert len(RunJournal(partial)) == 4

    def test_config_change_rejected_on_resume(self, tmp_path):
        path = tmp_path / "exp.jsonl"
        run_experiment(ExperimentConfig(**self.CONFIG), {"pl": GRAPH},
                       journal=str(path))
        changed = dict(self.CONFIG, seed=99)
        with pytest.raises(ExperimentError):
            run_experiment(ExperimentConfig(**changed), {"pl": GRAPH},
                           journal=str(path))
