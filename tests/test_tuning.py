"""Tests for the hyperparameter grid search."""

import pytest

from repro.exceptions import ExperimentError
from repro.graphs import powerlaw_cluster_graph
from repro.harness.tuning import grid_search
from repro.noise import make_noisy_copies

GRAPH = powerlaw_cluster_graph(70, 3, 0.3, seed=95)
PAIRS = make_noisy_copies(GRAPH, "one-way", 0.02, copies=2, seed=96)


class TestGridSearch:
    def test_all_combinations_scored(self):
        result = grid_search("isorank", {"alpha": [0.5, 0.9],
                                         "iterations": [5, 30]}, PAIRS)
        assert len(result.scores) == 4
        assert result.best_score >= result.scores[-1][1]

    def test_degree_prior_wins(self):
        """The search must rediscover the paper's §6.1 finding."""
        result = grid_search("isorank", {"prior": ["degree", "uniform"]},
                             PAIRS)
        assert result.best_params == {"prior": "degree"}

    def test_failed_configs_rank_last(self):
        # iterations=0 is rejected by NSD's constructor -> failure -> 0.0.
        result = grid_search("nsd", {"iterations": [0, 20]}, PAIRS)
        assert result.best_params == {"iterations": 20}
        assert result.scores[-1] == ({"iterations": 0}, 0.0)

    def test_format_table(self):
        result = grid_search("isorank", {"alpha": [0.9]}, PAIRS)
        text = result.format_table()
        assert "isorank" in text and "<- best" in text

    def test_validation(self):
        with pytest.raises(ExperimentError):
            grid_search("isorank", {}, PAIRS)
        with pytest.raises(ExperimentError):
            grid_search("isorank", {"alpha": [0.9]}, [])
        with pytest.raises(ExperimentError):
            grid_search("isorank", {"alpha": []}, PAIRS)

    def test_deterministic(self):
        a = grid_search("nsd", {"alpha": [0.6, 0.8]}, PAIRS, seed=5)
        b = grid_search("nsd", {"alpha": [0.6, 0.8]}, PAIRS, seed=5)
        assert a.scores == b.scores
