"""Tests for sparse top-k similarity extraction."""

import numpy as np
import pytest
from scipy import sparse

from repro.algorithms import Regal
from repro.embedding.topk import topk_similarity
from repro.exceptions import AlgorithmError
from repro.graphs import powerlaw_cluster_graph
from repro.measures import accuracy
from repro.noise import make_pair


class TestTopkSimilarity:
    def test_shape_and_sparsity(self):
        rng = np.random.default_rng(0)
        mat = topk_similarity(rng.random((30, 8)), rng.random((40, 8)), k=5)
        assert sparse.issparse(mat)
        assert mat.shape == (30, 40)
        assert (mat.getnnz(axis=1) == 5).all()

    def test_values_match_dense_kernel(self):
        rng = np.random.default_rng(1)
        src, tgt = rng.random((10, 4)), rng.random((15, 4))
        from repro.util import pairwise_sq_dists
        dense = np.exp(-pairwise_sq_dists(src, tgt))
        top = topk_similarity(src, tgt, k=3).toarray()
        for row in range(10):
            stored = np.flatnonzero(top[row])
            assert np.allclose(top[row, stored], dense[row, stored])
            # The stored entries are the 3 largest of the dense row.
            best3 = set(np.argsort(-dense[row])[:3])
            assert set(stored) == best3

    def test_k_clipped(self):
        rng = np.random.default_rng(2)
        mat = topk_similarity(rng.random((5, 3)), rng.random((4, 3)), k=10)
        assert (mat.getnnz(axis=1) == 4).all()

    def test_validation(self):
        with pytest.raises(AlgorithmError):
            topk_similarity(np.zeros((3, 2)), np.zeros((3, 3)))
        with pytest.raises(AlgorithmError):
            topk_similarity(np.zeros((3, 2)), np.zeros((3, 2)), k=0)


class TestRegalTopk:
    def test_sparse_alignment_quality(self):
        graph = powerlaw_cluster_graph(80, 3, 0.3, seed=81)
        pair = make_pair(graph, "one-way", 0.0, seed=82)
        algo = Regal()
        sparse_sim = algo.topk_similarity(pair.source, pair.target, k=10,
                                          seed=0)
        from repro.assignment import sort_greedy
        mapping = sort_greedy(sparse_sim.toarray())
        dense_result = algo.align(pair.source, pair.target,
                                  assignment="sg", seed=0)
        acc_sparse = accuracy(mapping, pair.ground_truth)
        acc_dense = accuracy(dense_result.mapping, pair.ground_truth)
        # Top-10 extraction loses little vs the dense similarity.
        assert acc_sparse >= acc_dense - 0.25

    def test_memory_footprint_linear(self):
        graph = powerlaw_cluster_graph(120, 3, 0.3, seed=83)
        pair = make_pair(graph, "one-way", 0.0, seed=84)
        mat = Regal().topk_similarity(pair.source, pair.target, k=5, seed=0)
        assert mat.nnz == 120 * 5
