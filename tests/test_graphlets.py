"""Tests for graphlet orbit counting and GDV similarity."""

import numpy as np
import pytest

from repro.exceptions import AlgorithmError
from repro.graphlets import ORBIT_COUNT, gdv_similarity, orbit_counts
from repro.graphlets.similarity import gdv_signature_distance, orbit_weights
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)
from repro.graphs.operations import permute_graph


class TestClosedFormCounts:
    def test_triangle(self):
        counts = orbit_counts(complete_graph(3))
        assert np.all(counts[:, 0] == 2)   # degree
        assert np.all(counts[:, 3] == 1)   # one triangle each
        assert np.all(counts[:, 1:3] == 0)  # no induced P3

    def test_path_p4(self):
        counts = orbit_counts(path_graph(4))
        assert counts[:, 4].tolist() == [1, 0, 0, 1]  # P4 ends
        assert counts[:, 5].tolist() == [0, 1, 1, 0]  # P4 middles

    def test_star_claw(self):
        counts = orbit_counts(star_graph(4))  # exactly one claw
        assert counts[0, 7] == 1
        assert np.all(counts[1:, 6] == 1)

    def test_big_star_claw_count(self):
        n_leaves = 6
        counts = orbit_counts(star_graph(n_leaves + 1))
        # Claws centered at the hub: C(6, 3) = 20.
        assert counts[0, 7] == 20
        # Each leaf is in C(5, 2) = 10 claws.
        assert np.all(counts[1:, 6] == 10)

    def test_cycle_c4(self):
        counts = orbit_counts(cycle_graph(4))
        assert np.all(counts[:, 8] == 1)
        assert np.all(counts[:, [3, 4, 6, 7, 9, 10, 11, 12, 13, 14]] == 0)

    def test_k4(self):
        counts = orbit_counts(complete_graph(4))
        assert np.all(counts[:, 14] == 1)
        assert np.all(counts[:, 3] == 3)  # each node in 3 triangles
        assert np.all(counts[:, [8, 9, 10, 11, 12, 13]] == 0)

    def test_paw(self):
        # Triangle 0-1-2 with pendant 3 attached at 2.
        g = Graph(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        counts = orbit_counts(g)
        assert counts[3, 9] == 1    # tail end
        assert counts[2, 11] == 1   # attachment
        assert counts[0, 10] == 1 and counts[1, 10] == 1

    def test_diamond(self):
        # K4 minus edge (2, 3): hubs 0, 1; rim 2, 3.
        g = Graph(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)])
        counts = orbit_counts(g)
        assert counts[0, 13] == 1 and counts[1, 13] == 1
        assert counts[2, 12] == 1 and counts[3, 12] == 1

    def test_k5_totals(self):
        counts = orbit_counts(complete_graph(5))
        # Each node of K5: triangles C(4,2)=6, K4s C(4,3)=4.
        assert np.all(counts[:, 3] == 6)
        assert np.all(counts[:, 14] == 4)

    def test_empty_and_edgeless(self):
        assert orbit_counts(Graph(0)).shape == (0, ORBIT_COUNT)
        assert np.all(orbit_counts(Graph(5)) == 0)


class TestInvariance:
    def test_permutation_equivariance(self):
        g = erdos_renyi_graph(25, 0.3, seed=0)
        rng = np.random.default_rng(1)
        perm = rng.permutation(25)
        counts = orbit_counts(g)
        counts_perm = orbit_counts(permute_graph(g, perm))
        assert np.array_equal(counts, counts_perm[perm])

    def test_orbit_sum_identities(self):
        """Graphlet totals computed two ways must agree."""
        g = erdos_renyi_graph(30, 0.25, seed=2)
        counts = orbit_counts(g)
        # Each triangle has 3 orbit-3 nodes; each K4 has 4 orbit-14 nodes.
        assert counts[:, 3].sum() % 3 == 0
        assert counts[:, 14].sum() % 4 == 0
        # A paw has exactly one orbit-9, one orbit-11 and two orbit-10 nodes.
        assert counts[:, 9].sum() == counts[:, 11].sum()
        assert counts[:, 10].sum() == 2 * counts[:, 9].sum()
        # A P4 has two ends and two middles; a diamond two hubs and two rims.
        assert counts[:, 4].sum() == counts[:, 5].sum()
        assert counts[:, 12].sum() == counts[:, 13].sum()
        # A claw has three leaves per center.
        assert counts[:, 6].sum() == 3 * counts[:, 7].sum()


class TestGdvSimilarity:
    def test_identical_signatures_similarity_one(self):
        g = erdos_renyi_graph(20, 0.3, seed=3)
        sig = orbit_counts(g)
        sim = gdv_similarity(sig, sig)
        assert np.allclose(np.diag(sim), 1.0)

    def test_range(self):
        a = orbit_counts(erdos_renyi_graph(15, 0.3, seed=4))
        b = orbit_counts(erdos_renyi_graph(18, 0.4, seed=5))
        dist = gdv_signature_distance(a, b)
        assert np.all(dist >= 0.0) and np.all(dist < 1.0)

    def test_symmetry(self):
        a = orbit_counts(erdos_renyi_graph(12, 0.3, seed=6))
        b = orbit_counts(erdos_renyi_graph(12, 0.3, seed=7))
        assert np.allclose(gdv_signature_distance(a, b),
                           gdv_signature_distance(b, a).T)

    def test_width_mismatch_rejected(self):
        with pytest.raises(AlgorithmError):
            gdv_signature_distance(np.zeros((2, 15)), np.zeros((2, 10)))

    def test_weights(self):
        weights = orbit_weights()
        assert weights.shape == (ORBIT_COUNT,)
        assert weights[0] == pytest.approx(1.0)  # orbit 0 depends only on itself
        assert np.all(weights > 0)
        # More redundant orbits weigh less.
        assert weights[14] < weights[3] < weights[0]
