"""Tests for the terminal line-plot renderer."""

import numpy as np

from repro.harness import line_plot


class TestLinePlot:
    def test_basic_structure(self):
        text = line_plot({"a": [(0, 0.0), (1, 1.0)]}, title="demo")
        assert text.startswith("demo")
        assert "legend" in text
        assert "o=a" in text

    def test_multiple_series_distinct_markers(self):
        text = line_plot({
            "alpha": [(0, 0.2), (1, 0.4)],
            "beta": [(0, 0.9), (1, 0.1)],
        })
        assert "o=alpha" in text and "x=beta" in text

    def test_unit_interval_axis_padding(self):
        text = line_plot({"a": [(0, 0.4), (1, 0.6)]})
        assert "1.00" in text and "0.00" in text

    def test_wide_range_axis(self):
        text = line_plot({"a": [(0, 0.0), (1, 50.0)]})
        assert "50.00" in text

    def test_nan_points_skipped(self):
        text = line_plot({"a": [(0, 0.5), (1, float("nan")), (2, 0.7)]})
        assert "o=a" in text

    def test_all_nan_series_dropped(self):
        text = line_plot({
            "good": [(0, 0.5)],
            "bad": [(0, float("nan"))],
        })
        assert "good" in text
        assert "bad" not in text

    def test_empty_input(self):
        assert "(no data)" in line_plot({}, title="t")

    def test_single_point(self):
        text = line_plot({"a": [(0.5, 0.5)]})
        assert "o=a" in text

    def test_dimensions(self):
        text = line_plot({"a": [(0, 0), (1, 1)]}, width=30, height=8)
        rows = [l for l in text.splitlines() if "|" in l]
        assert len(rows) == 8
        assert all(len(row.split("|", 1)[1]) == 30 for row in rows)
